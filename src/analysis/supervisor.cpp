#include "analysis/supervisor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>

#include "sim/batch_engine.hpp"
#include "sim/engine.hpp"

namespace hinet {

namespace {

// wall_ms is observability only (excluded from aggregate statistics), and
// the backoff sleep never feeds simulation state.
// detlint-allow(banned-time): supervisor wall-time is a bench-style timer
using Clock = std::chrono::steady_clock;

}  // namespace

const char* to_string(RunErrorClass c) {
  switch (c) {
    case RunErrorClass::kPrecondition:
      return "precondition";
    case RunErrorClass::kDeadline:
      return "deadline";
    case RunErrorClass::kEngineInvariant:
      return "engine-invariant";
    case RunErrorClass::kIo:
      return "io";
    case RunErrorClass::kOther:
      return "other";
  }
  return "other";
}

RunErrorClass classify_run_error(const std::exception& e) {
  if (dynamic_cast<const DeadlineError*>(&e) != nullptr) {
    return RunErrorClass::kDeadline;
  }
  if (dynamic_cast<const IoError*>(&e) != nullptr) return RunErrorClass::kIo;
  if (dynamic_cast<const PreconditionError*>(&e) != nullptr) {
    return RunErrorClass::kPrecondition;
  }
  if (dynamic_cast<const InvariantError*>(&e) != nullptr) {
    return RunErrorClass::kEngineInvariant;
  }
  return RunErrorClass::kOther;
}

bool is_transient(RunErrorClass c) {
  // Deadline and I/O failures depend on machine state and may pass on
  // retry; precondition and invariant violations are deterministic — the
  // same inputs would fail the same way — and unknown errors are not safe
  // to assume transient.
  return c == RunErrorClass::kDeadline || c == RunErrorClass::kIo;
}

std::size_t SupervisedBatch::completed() const {
  std::size_t n = 0;
  for (const auto& slot : slots) {
    if (slot.has_value()) ++n;
  }
  return n;
}

SupervisedBatch run_replicates_supervised(const SpecFactory& factory,
                                          std::size_t repetitions,
                                          std::uint64_t base_seed,
                                          std::size_t jobs,
                                          const SupervisorPolicy& policy) {
  HINET_REQUIRE(repetitions >= 1, "need at least one repetition");
  HINET_REQUIRE(
      repetitions - 1 <= std::numeric_limits<std::uint64_t>::max() - base_seed,
      "replicate seed overflow: base_seed + repetitions - 1 wraps past "
      "2^64, which would alias replicates onto low seeds and correlate "
      "'independent' repetitions — lower the base seed or the repetition "
      "count");
  if (jobs == 0) jobs = default_jobs();

  SupervisedBatch batch;
  batch.slots.resize(repetitions);
  std::mutex book_mutex;  // guards failures + counters; slots are per-index
  std::atomic<bool> cancelled{false};

  const auto cancel_requested = [&policy] {
    return policy.cancel != nullptr &&
           policy.cancel->load(std::memory_order_relaxed);
  };

  const auto run_slot = [&](std::size_t rep) {
    const std::uint64_t seed = replicate_seed(base_seed, rep);
    if (policy.journal != nullptr) {
      if (auto cached = policy.journal->lookup(seed)) {
        batch.slots[rep] = std::move(*cached);
        const std::lock_guard<std::mutex> lock(book_mutex);
        ++batch.from_journal;
        return;
      }
    }
    const std::size_t max_attempts = policy.max_retries + 1;
    for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
      try {
        const auto t0 = Clock::now();
        SimulationSpec spec = factory(seed);
        if (policy.deadline_ms > 0) {
          spec.engine.deadline_ms = policy.deadline_ms;
        }
        ReplicateResult result;
        result.metrics = run_simulation(std::move(spec));
        result.wall_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        // Journal before reporting success: once append returns, the
        // record is fdatasync'd and a crash cannot lose this replicate.
        if (policy.journal != nullptr) policy.journal->append(seed, result);
        batch.slots[rep] = std::move(result);
        if (attempt > 1) {
          const std::lock_guard<std::mutex> lock(book_mutex);
          ++batch.retried_replicates;
        }
        if (policy.on_progress) policy.on_progress(rep, seed);
        return;
      } catch (const std::exception& e) {
        const RunErrorClass cls = classify_run_error(e);
        const bool retryable =
            is_transient(cls) &&
            (cls != RunErrorClass::kDeadline || policy.retry_deadline);
        if (retryable && attempt < max_attempts && !cancel_requested()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              policy.backoff_base_ms << (attempt - 1)));
          continue;
        }
        const std::lock_guard<std::mutex> lock(book_mutex);
        batch.failures.push_back(RunError{cls, rep, seed, attempt, e.what()});
        return;
      } catch (...) {
        const std::lock_guard<std::mutex> lock(book_mutex);
        batch.failures.push_back(RunError{RunErrorClass::kOther, rep, seed,
                                          attempt, "unknown exception"});
        return;
      }
    }
  };

  // Workers pull replicate indices from a shared counter; the counter only
  // moves forward, so every replicate runs at most once and cancellation
  // simply stops the pulls at the next boundary.
  std::atomic<std::size_t> next{0};
  const auto pull_worker = [&] {
    while (true) {
      if (cancel_requested()) {
        cancelled.store(true, std::memory_order_relaxed);
        break;
      }
      const std::size_t rep = next.fetch_add(1, std::memory_order_relaxed);
      if (rep >= repetitions) break;
      run_slot(rep);
    }
  };

  if (jobs == 1 || repetitions == 1) {
    pull_worker();
  } else {
    const std::size_t width = jobs < repetitions ? jobs : repetitions;
    std::vector<std::thread> pool;
    pool.reserve(width);
    for (std::size_t i = 0; i < width; ++i) pool.emplace_back(pull_worker);
    for (auto& t : pool) t.join();
  }

  batch.cancelled = cancelled.load(std::memory_order_relaxed);
  // Failure order depends on thread scheduling; sort for a deterministic
  // report.
  std::sort(batch.failures.begin(), batch.failures.end(),
            [](const RunError& a, const RunError& b) {
              return a.replicate < b.replicate;
            });
  return batch;
}

namespace {

// The supervised lockstep executor.  Structure mirrors the threaded path
// above, with the lockstep batch as the unit of work:
//
//   1. journal prefill, in index order (a resumed sweep only batches the
//      replicates it is actually missing);
//   2. the missing replicates, grouped into consecutive batches of R, run
//      on BatchEngines — a worker pool pulls whole batches when jobs > 1,
//      and cancellation is checked at batch boundaries;
//   3. per batch, fresh successes are journaled / slotted / reported in
//      index order; failures are classified by rethrowing the carried
//      exception_ptr, and the transient ones queue for retry;
//   4. after the pool joins, queued retries run as singleton simulations
//      (byte-identical to a lockstep slot; the replicate gets the whole
//      deadline budget to itself) with the same backoff schedule as the
//      threaded path.
SupervisedBatch run_supervised_lockstep(const SpecFactory& factory,
                                        const ExperimentOptions& options,
                                        const SupervisorPolicy& policy) {
  const std::size_t repetitions = options.repetitions;
  const std::uint64_t base_seed = options.base_seed;
  const std::size_t batch_width = options.policy.replicates_per_batch;
  const std::size_t jobs = options.policy.effective_jobs();
  HINET_REQUIRE(repetitions >= 1, "need at least one repetition");
  HINET_REQUIRE(batch_width >= 1, "replicates_per_batch must be at least 1");
  HINET_REQUIRE(
      repetitions - 1 <= std::numeric_limits<std::uint64_t>::max() - base_seed,
      "replicate seed overflow: base_seed + repetitions - 1 wraps past "
      "2^64, which would alias replicates onto low seeds and correlate "
      "'independent' repetitions — lower the base seed or the repetition "
      "count");

  SupervisedBatch batch;
  batch.slots.resize(repetitions);
  std::mutex book_mutex;  // guards failures/retries/counters
  std::atomic<bool> cancelled{false};
  const auto cancel_requested = [&policy] {
    return policy.cancel != nullptr &&
           policy.cancel->load(std::memory_order_relaxed);
  };

  // 1. Journal prefill.
  std::vector<std::size_t> missing;
  missing.reserve(repetitions);
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    if (policy.journal != nullptr) {
      if (auto cached = policy.journal->lookup(replicate_seed(base_seed, rep))) {
        batch.slots[rep] = std::move(*cached);
        ++batch.from_journal;
        continue;
      }
    }
    missing.push_back(rep);
  }
  if (missing.empty()) return batch;

  // Transient first-attempt failures, queued for step 4.
  std::vector<RunError> retry_queue;
  const auto dispatch_failure = [&](std::size_t rep, RunErrorClass cls,
                                    const std::string& message) {
    const bool retryable =
        policy.max_retries > 0 && is_transient(cls) &&
        (cls != RunErrorClass::kDeadline || policy.retry_deadline);
    const RunError err{cls, rep, replicate_seed(base_seed, rep), 1, message};
    const std::lock_guard<std::mutex> lock(book_mutex);
    if (retryable) {
      retry_queue.push_back(err);
    } else {
      batch.failures.push_back(err);
    }
  };

  // 2./3. Lockstep batches over the missing replicates.
  const std::size_t group_count =
      (missing.size() + batch_width - 1) / batch_width;
  const auto run_group = [&](std::size_t group) {
    const std::size_t begin = group * batch_width;
    const std::size_t end =
        std::min(begin + batch_width, missing.size());
    std::vector<SimulationSpec> specs;
    std::vector<std::size_t> members;  // replicate index per spec slot
    specs.reserve(end - begin);
    members.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t rep = missing[i];
      try {
        SimulationSpec spec = factory(replicate_seed(base_seed, rep));
        if (policy.deadline_ms > 0) {
          spec.engine.deadline_ms = policy.deadline_ms;
        }
        specs.push_back(std::move(spec));
        members.push_back(rep);
      } catch (const std::exception& e) {
        dispatch_failure(rep, classify_run_error(e), e.what());
      } catch (...) {
        dispatch_failure(rep, RunErrorClass::kOther, "unknown exception");
      }
    }
    if (specs.empty()) return;

    const auto t0 = Clock::now();
    try {
      BatchEngine engine(std::move(specs));
      BatchOutcome outcome = engine.run();
      // Lockstep interleaves rounds, so per-replicate wall time is the
      // batch wall split evenly (timing only; never part of statistics).
      const double per_replicate_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count() /
          static_cast<double>(members.size());
      for (std::size_t slot = 0; slot < members.size(); ++slot) {
        if (!outcome.slots[slot].has_value()) continue;
        const std::size_t rep = members[slot];
        const std::uint64_t seed = replicate_seed(base_seed, rep);
        ReplicateResult result{std::move(*outcome.slots[slot]),
                               per_replicate_ms};
        // Journal before reporting success, same as the threaded path: an
        // appended record survives a crash; the progress hook fires after.
        if (policy.journal != nullptr) policy.journal->append(seed, result);
        batch.slots[rep] = std::move(result);
        if (policy.on_progress) policy.on_progress(rep, seed);
      }
      for (const BatchReplicateFailure& f : outcome.failures) {
        RunErrorClass cls = RunErrorClass::kOther;
        if (f.error != nullptr) {
          try {
            std::rethrow_exception(f.error);
          } catch (const std::exception& e) {
            cls = classify_run_error(e);
          } catch (...) {
          }
        }
        dispatch_failure(members[f.index], cls, f.message);
      }
    } catch (const std::exception& e) {
      // Batch assembly failed (spec validation, channel homogeneity):
      // not attributable to one replicate, so every member reports it.
      const RunErrorClass cls = classify_run_error(e);
      for (const std::size_t rep : members) {
        dispatch_failure(rep, cls, e.what());
      }
    } catch (...) {
      for (const std::size_t rep : members) {
        dispatch_failure(rep, RunErrorClass::kOther, "unknown exception");
      }
    }
  };

  std::atomic<std::size_t> next{0};
  const auto pull_worker = [&] {
    while (true) {
      if (cancel_requested()) {
        cancelled.store(true, std::memory_order_relaxed);
        break;
      }
      const std::size_t group = next.fetch_add(1, std::memory_order_relaxed);
      if (group >= group_count) break;
      run_group(group);
    }
  };
  if (jobs == 1 || group_count == 1) {
    pull_worker();
  } else {
    const std::size_t width = jobs < group_count ? jobs : group_count;
    std::vector<std::thread> pool;
    pool.reserve(width);
    for (std::size_t i = 0; i < width; ++i) pool.emplace_back(pull_worker);
    for (auto& t : pool) t.join();
  }

  // 4. Retries, serially (the rare path; keeps backoff and the journal
  // append order deterministic).
  std::sort(retry_queue.begin(), retry_queue.end(),
            [](const RunError& a, const RunError& b) {
              return a.replicate < b.replicate;
            });
  const std::size_t max_attempts = policy.max_retries + 1;
  for (RunError& pending : retry_queue) {
    bool resolved = false;
    std::size_t attempt = pending.attempts;
    while (attempt < max_attempts && !cancel_requested()) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(policy.backoff_base_ms << (attempt - 1)));
      ++attempt;
      try {
        const auto t0 = Clock::now();
        SimulationSpec spec = factory(pending.seed);
        if (policy.deadline_ms > 0) {
          spec.engine.deadline_ms = policy.deadline_ms;
        }
        ReplicateResult result;
        result.metrics = run_simulation(std::move(spec));
        result.wall_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        if (policy.journal != nullptr) {
          policy.journal->append(pending.seed, result);
        }
        batch.slots[pending.replicate] = std::move(result);
        ++batch.retried_replicates;
        if (policy.on_progress) {
          policy.on_progress(pending.replicate, pending.seed);
        }
        resolved = true;
        break;
      } catch (const std::exception& e) {
        pending.cls = classify_run_error(e);
        pending.message = e.what();
        pending.attempts = attempt;
        const bool still_retryable =
            is_transient(pending.cls) &&
            (pending.cls != RunErrorClass::kDeadline || policy.retry_deadline);
        if (!still_retryable) break;
      } catch (...) {
        pending.cls = RunErrorClass::kOther;
        pending.message = "unknown exception";
        pending.attempts = attempt;
        break;
      }
    }
    if (!resolved) {
      pending.attempts = attempt;
      batch.failures.push_back(pending);
    }
  }
  if (cancel_requested()) cancelled.store(true, std::memory_order_relaxed);

  batch.cancelled = cancelled.load(std::memory_order_relaxed);
  std::sort(batch.failures.begin(), batch.failures.end(),
            [](const RunError& a, const RunError& b) {
              return a.replicate < b.replicate;
            });
  return batch;
}

}  // namespace

SupervisedBatch run_replicates_supervised(const SpecFactory& factory,
                                          const ExperimentOptions& options,
                                          const SupervisorPolicy& policy) {
  if (options.policy.is_batched()) {
    return run_supervised_lockstep(factory, options, policy);
  }
  return run_replicates_supervised(factory, options.repetitions,
                                   options.base_seed,
                                   options.policy.effective_jobs(), policy);
}

AggregateResult aggregate_supervised(const SupervisedBatch& batch,
                                     double batch_seconds, std::size_t jobs) {
  std::vector<ReplicateResult> ok;
  ok.reserve(batch.slots.size());
  for (const auto& slot : batch.slots) {
    if (slot.has_value()) ok.push_back(*slot);
  }
  HINET_REQUIRE(!ok.empty(),
                "cannot aggregate a batch with zero successful replicates");
  AggregateResult out = aggregate_replicates(ok, batch_seconds, jobs);
  out.failed_replicates = batch.failures.size();
  out.retried_replicates = batch.retried_replicates;
  return out;
}

AggregateResult run_experiment_supervised(const SpecFactory& factory,
                                          const ExperimentOptions& options,
                                          const SupervisorPolicy& policy) {
  const std::size_t jobs = options.policy.effective_jobs();
  const auto t0 = Clock::now();
  const SupervisedBatch batch =
      run_replicates_supervised(factory, options, policy);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  if (batch.completed() == 0) {
    std::vector<ReplicateFailure> failures;
    failures.reserve(batch.failures.size());
    for (const RunError& f : batch.failures) {
      std::ostringstream os;
      os << "[" << to_string(f.cls) << ", " << f.attempts << " attempt(s)] "
         << f.message;
      failures.push_back(ReplicateFailure{f.replicate, f.seed, os.str()});
    }
    if (failures.empty()) {
      failures.push_back(ReplicateFailure{
          0, replicate_seed(options.base_seed, 0),
          "batch cancelled before any replicate completed"});
    }
    throw ReplicateBatchError(std::move(failures));
  }
  AggregateResult out = aggregate_supervised(batch, seconds, jobs);
  out.timing.replicates_per_batch =
      options.policy.is_batched() ? options.policy.replicates_per_batch : 1;
  return out;
}

AggregateResult run_experiment_supervised(const SpecFactory& factory,
                                          std::size_t repetitions,
                                          std::uint64_t base_seed,
                                          std::size_t jobs,
                                          const SupervisorPolicy& policy) {
  return run_experiment_supervised(
      factory,
      ExperimentOptions{repetitions, base_seed,
                        ExecutionPolicy::threaded(jobs)},
      policy);
}

namespace {

std::atomic<bool> g_sigint_cancel{false};

extern "C" void hinet_sigint_handler(int sig) {
  g_sigint_cancel.store(true, std::memory_order_relaxed);
  // A second delivery should kill even a wedged sweep: fall back to the
  // default disposition once the graceful path has been requested.
  std::signal(sig, SIG_DFL);
}

}  // namespace

const std::atomic<bool>* install_sigint_cancellation() {
  std::signal(SIGINT, hinet_sigint_handler);
  return &g_sigint_cancel;
}

const std::atomic<bool>* install_termination_cancellation() {
  std::signal(SIGINT, hinet_sigint_handler);
  std::signal(SIGTERM, hinet_sigint_handler);
  return &g_sigint_cancel;
}

}  // namespace hinet
