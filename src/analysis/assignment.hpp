// Initial token placement for the k-token dissemination problem: "each
// node receives an initial set of tokens ... such that the total number of
// tokens in the input to all nodes is k".
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "util/token_set.hpp"

namespace hinet {

enum class AssignmentMode {
  /// Each of the k tokens starts at a distinct uniformly random node
  /// (requires k <= n).  The canonical hard case: tokens must cross the
  /// whole network.
  kDistinctRandom,
  /// All k tokens start at node 0 (broadcast / single-source case).
  kSingleSource,
  /// Token t starts at node t mod n (deterministic spread; useful for
  /// reproducible walkthroughs).
  kRoundRobin,
};

const char* assignment_mode_name(AssignmentMode mode);

/// Produces one TokenSet per node with universe k.  Exactly k insertions
/// are made in total across all nodes.
std::vector<TokenSet> assign_tokens(std::size_t n, std::size_t k,
                                    AssignmentMode mode, Rng& rng);

}  // namespace hinet
