#include "analysis/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "sim/snapshot.hpp"

namespace hinet {

namespace {

// u32 magic + u64 payload length + u32 crc
constexpr std::size_t kRecordHeaderBytes = 4 + 8 + 4;
constexpr std::size_t kFileHeaderBytes = 4 + 2 + 2;

std::string errno_detail(const std::string& what, const std::string& path) {
  std::ostringstream os;
  os << what << " " << path << ": " << std::strerror(errno);
  return os.str();
}

}  // namespace

ExperimentJournal::ExperimentJournal(std::string path)
    : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) throw IoError(errno_detail("cannot open journal", path_));

  std::vector<std::uint8_t> raw;
  std::uint8_t chunk[4096];
  ssize_t got = 0;
  while ((got = ::read(fd_, chunk, sizeof chunk)) > 0) {
    raw.insert(raw.end(), chunk, chunk + got);
  }
  if (got < 0) {
    const IoError err(errno_detail("read error on journal", path_));
    ::close(fd_);
    fd_ = -1;
    throw err;
  }

  try {
    replay_and_truncate(std::move(raw));
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

ExperimentJournal::~ExperimentJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void ExperimentJournal::replay_and_truncate(std::vector<std::uint8_t> raw) {
  if (raw.empty()) {
    // Fresh journal: stamp the header so a resuming process can tell this
    // file from arbitrary data.
    ByteWriter w;
    w.u32(kMagic);
    w.u16(kVersion);
    w.u16(0);  // reserved
    write_all(w.buffer().data(), w.size());
    if (::fdatasync(fd_) != 0) {
      throw IoError(errno_detail("fdatasync failed on journal", path_));
    }
    // The journal file itself was just created: make its directory entry
    // durable too, or a power failure could forget the whole journal while
    // the sweep believes every append reached disk.
    fsync_parent_directory(path_);
    return;
  }

  // The header is never the tail of a crashed append — if it is wrong the
  // file simply is not this journal, so refuse instead of "salvaging" all
  // of someone else's data away.
  ByteReader header(raw, "journal header (" + path_ + ")");
  if (raw.size() < kFileHeaderBytes) {
    std::ostringstream os;
    os << "journal file " << path_ << " truncated: " << raw.size()
       << " byte(s) is shorter than the " << kFileHeaderBytes
       << "-byte header";
    throw IoError(os.str());
  }
  const std::uint32_t got_magic = header.u32();
  if (got_magic != kMagic) {
    std::ostringstream os;
    os << "journal file " << path_ << " has wrong magic 0x" << std::hex
       << got_magic << " (expected 0x" << kMagic
       << ") — not an experiment journal";
    throw IoError(os.str());
  }
  const std::uint16_t got_version = header.u16();
  if (got_version != kVersion) {
    std::ostringstream os;
    os << "journal file " << path_ << " has format version " << got_version
       << " but this build reads version " << kVersion
       << " — re-run the sweep with a fresh journal path";
    throw IoError(os.str());
  }
  header.u16();  // reserved

  // Replay records.  Anything that fails to parse is treated as the torn
  // tail of a crashed append: every record *before* it was fsynced and
  // CRC-checked, so the prefix is trustworthy and the rest is dropped.
  std::size_t valid_end = kFileHeaderBytes;
  ByteReader r(raw, "journal (" + path_ + ")");
  r.bytes(kFileHeaderBytes);
  while (!r.done()) {
    try {
      if (r.u32() != kRecordMagic) break;
      const std::uint64_t len = r.u64();
      const std::uint32_t stored_crc = r.u32();
      if (len > r.remaining()) break;
      const auto payload = r.bytes(static_cast<std::size_t>(len));
      if (crc32(payload) != stored_crc) break;
      ByteReader pr(payload, "journal record");
      const std::uint64_t seed = pr.u64();
      ReplicateResult result;
      result.wall_ms = pr.f64();
      result.metrics = load_metrics(pr);
      pr.expect_done();
      entries_.insert_or_assign(seed, std::move(result));
    } catch (const IoError&) {
      break;
    }
    valid_end = raw.size() - r.remaining();
  }
  dropped_bytes_ = raw.size() - valid_end;

  if (dropped_bytes_ > 0) {
    // Truncate the torn tail so subsequent appends extend a valid file.
    if (::ftruncate(fd_, static_cast<off_t>(valid_end)) != 0) {
      throw IoError(errno_detail("cannot truncate corrupt journal tail of",
                                 path_));
    }
    if (::lseek(fd_, 0, SEEK_END) < 0) {
      throw IoError(errno_detail("lseek failed on journal", path_));
    }
  }
}

void ExperimentJournal::write_all(const std::uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t wrote = ::write(fd_, data + done, len - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw IoError(errno_detail("write failed on journal", path_));
    }
    done += static_cast<std::size_t>(wrote);
  }
}

std::size_t ExperimentJournal::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

bool ExperimentJournal::contains(std::uint64_t seed) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(seed) != entries_.end();
}

std::optional<ReplicateResult> ExperimentJournal::lookup(
    std::uint64_t seed) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(seed);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::uint64_t> ExperimentJournal::seeds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> out;
  out.reserve(entries_.size());
  for (const auto& [seed, result] : entries_) out.push_back(seed);
  return out;
}

void ExperimentJournal::append(std::uint64_t seed,
                               const ReplicateResult& result) {
  const std::lock_guard<std::mutex> lock(mutex_);
  HINET_REQUIRE(entries_.find(seed) == entries_.end(),
                "journal already holds this replicate seed — the supervised "
                "runner must skip recorded seeds instead of re-running them");

  ByteWriter payload;
  payload.u64(seed);
  payload.f64(result.wall_ms);
  save_metrics(payload, result.metrics);

  ByteWriter record;
  record.u32(kRecordMagic);
  record.u64(payload.size());
  record.u32(crc32(payload.buffer()));
  record.bytes(payload.buffer());

  write_all(record.buffer().data(), record.size());
  if (::fdatasync(fd_) != 0) {
    throw IoError(errno_detail("fdatasync failed on journal", path_));
  }
  entries_.insert_or_assign(seed, result);
}

}  // namespace hinet
