#include "analysis/assignment.hpp"

namespace hinet {

const char* assignment_mode_name(AssignmentMode mode) {
  switch (mode) {
    case AssignmentMode::kDistinctRandom: return "distinct-random";
    case AssignmentMode::kSingleSource: return "single-source";
    case AssignmentMode::kRoundRobin: return "round-robin";
  }
  return "?";
}

std::vector<TokenSet> assign_tokens(std::size_t n, std::size_t k,
                                    AssignmentMode mode, Rng& rng) {
  HINET_REQUIRE(n >= 1, "need nodes");
  HINET_REQUIRE(k >= 1, "need tokens");
  std::vector<TokenSet> out(n, TokenSet(k));
  switch (mode) {
    case AssignmentMode::kDistinctRandom: {
      HINET_REQUIRE(k <= n, "distinct-random needs k <= n");
      const auto holders = rng.sample(n, k);
      for (TokenId t = 0; t < k; ++t) {
        out[holders[t]].insert(t);
      }
      break;
    }
    case AssignmentMode::kSingleSource: {
      for (TokenId t = 0; t < k; ++t) out[0].insert(t);
      break;
    }
    case AssignmentMode::kRoundRobin: {
      for (TokenId t = 0; t < k; ++t) out[t % n].insert(t);
      break;
    }
  }
  return out;
}

}  // namespace hinet
