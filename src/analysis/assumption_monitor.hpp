// Online (T, L)-HiNet assumption monitoring.
//
// The checkers in core/hinet_properties.hpp answer "does the whole trace
// satisfy Definition d?" with the first violation only — the right shape
// for unit tests and bounds audits.  Under fault injection the interesting
// question is different: *which* windows of the realized trace broke
// *which* assumption, and how did dissemination fare around them.  The
// monitor replays a realized trace — a materialized Ctvg, or any
// topology/hierarchy provider pair (a FaultyNetwork over a streaming
// generator runs online, one window at a time, with nothing fully
// resident) — and produces one report per aligned T-window covering
//   - Definition 2  (T-interval stable cluster head set),
//   - Definition 4  (T-interval stable hierarchy),
//   - Definition 5  (head connectivity via a stable subgraph Υ),
//   - Definitions 6/7 (L-hop head connectivity inside Υ).
// The per-window log joins against SimMetrics so violations line up with
// completion over time.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/ctvg.hpp"
#include "sim/metrics.hpp"

namespace hinet {

/// Verdict for one aligned window [start, start + length).
struct WindowReport {
  Round start = 0;
  std::size_t length = 0;

  bool head_set_stable = true;   ///< Definition 2 over this window
  bool hierarchy_stable = true;  ///< Definition 4 over this window
  bool head_connectivity = true; ///< Definition 5: Υ exists and spans heads
  bool l_hop_ok = true;          ///< Definitions 6/7: L-hop bound inside Υ

  /// Human-readable description of the first violated property (empty when
  /// the window is clean).
  std::string violation;

  /// Fraction of nodes complete at the window's last executed round;
  /// -1 until join_completion() fills it in.
  double completion_fraction_end = -1.0;

  bool ok() const {
    return head_set_stable && hierarchy_stable && head_connectivity &&
           l_hop_ok;
  }
};

/// Whole-trace monitoring result: one WindowReport per complete aligned
/// window, plus the (t, l) the trace was judged against.
struct AssumptionReport {
  std::size_t t = 0;
  int l = 0;
  std::vector<WindowReport> windows;

  std::size_t violated_windows() const;
  bool clean() const { return violated_windows() == 0; }

  /// Start round of the earliest violated window, or nullopt when clean.
  std::optional<Round> first_violation_round() const;

  /// Multi-line log, one window per line (for EXPERIMENTS.md-style docs
  /// and test failure output).
  std::string to_string() const;
};

/// Replays `trace` and judges every complete aligned window of length `t`
/// inside [0, rounds) against Definitions 2, 4, 5 and 6/7 with bound `l`.
/// A trace built from a clean make_hinet generator with matching (T, L)
/// yields a clean report; crash/partition/burst faults show up as violated
/// windows.
AssumptionReport monitor_assumptions(Ctvg& trace, std::size_t rounds,
                                     std::size_t t, int l);

/// Online form over any topology/hierarchy pair — in particular the
/// lazily synthesised views of make_hinet_stream (pass the stream a ring
/// window >= t so each aligned window stays resident and the pass never
/// replays), optionally wrapped in a FaultyNetwork.  Windows are judged
/// strictly forward, so traces far too large to materialize can still be
/// certified.
AssumptionReport monitor_assumptions(DynamicNetwork& net,
                                     HierarchyProvider& hier,
                                     std::size_t rounds, std::size_t t, int l);

/// Fills each window's completion_fraction_end from the run's per-round
/// completion series, making the violation log joinable against the
/// degradation metrics ("the window that lost head connectivity is where
/// completion stalled").
void join_completion(AssumptionReport& report, const SimMetrics& metrics);

}  // namespace hinet
