// The four evaluation scenarios of the paper's Section V, prepared as
// runnable simulations:
//
//   kKloInterval   — KLO pipeline on a (k+αL, L)-HiNet trace, hierarchy
//                    ignored (the "(k+αL)-interval connected [7]" row);
//   kHiNetInterval — Algorithm 1 on the same trace family;
//   kHiNetIntervalStable — Remark 1 variant on an ∞-stable-head trace;
//   kKloOne        — KLO full-broadcast forwarding on a (1, L)-HiNet trace;
//   kHiNetOne      — Algorithm 2 on the same trace family.
//
// Each scenario builder returns the prepared run plus the generator's
// observed dynamics statistics and the analytic CostParams instantiated
// with those *measured* values (θ, n_m, n_r), so benches can print
// analytic-vs-measured side by side.
#pragma once

#include "analysis/assignment.hpp"
#include "analysis/experiment.hpp"
#include "core/cost_model.hpp"
#include "core/hinet_generator.hpp"

namespace hinet {

enum class Scenario {
  kKloInterval,
  kHiNetInterval,
  kHiNetIntervalStable,
  kKloOne,
  kHiNetOne,
};

const char* scenario_name(Scenario s);

struct ScenarioConfig {
  std::size_t nodes = 100;
  std::size_t heads = 30;  ///< generator head count; also the θ bound
  std::size_t k = 8;
  std::size_t alpha = 5;
  int hop_l = 2;
  /// Member re-affiliation probability per phase boundary (per round for
  /// the (1, L) scenarios, whose phases are single rounds).
  double reaffiliation_prob = 0.05;
  std::size_t churn_edges = 4;
  AssignmentMode assignment = AssignmentMode::kDistinctRandom;
  /// Run the full schedule instead of stopping at completion, so measured
  /// communication reflects the algorithm as specified (no oracle stop).
  bool run_full_schedule = true;
};

struct ScenarioRun {
  PreparedRun run;
  HiNetTraceStats trace_stats;
  /// CostParams with θ, n_m, n_r filled from the generated trace (rounded
  /// to the nearest integer), ready for the Table 2 formulas.
  CostParams analytic;
  std::size_t scheduled_rounds = 0;
};

ScenarioRun make_scenario(Scenario s, const ScenarioConfig& cfg,
                          std::uint64_t seed);

/// RunFactory adapter for run_experiment.
RunFactory scenario_factory(Scenario s, const ScenarioConfig& cfg);

}  // namespace hinet
