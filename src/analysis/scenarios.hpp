// The four evaluation scenarios of the paper's Section V, prepared as
// runnable simulations:
//
//   kKloInterval   — KLO pipeline on a (k+αL, L)-HiNet trace, hierarchy
//                    ignored (the "(k+αL)-interval connected [7]" row);
//   kHiNetInterval — Algorithm 1 on the same trace family;
//   kHiNetIntervalStable — Remark 1 variant on an ∞-stable-head trace;
//   kKloOne        — KLO full-broadcast forwarding on a (1, L)-HiNet trace;
//   kHiNetOne      — Algorithm 2 on the same trace family.
//
// Each scenario builder returns a self-owning SimulationSpec plus the
// generator's observed dynamics statistics and the analytic CostParams
// instantiated with those *measured* values (θ, n_m, n_r), so benches can
// print analytic-vs-measured side by side.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "analysis/assignment.hpp"
#include "analysis/experiment.hpp"
#include "core/cost_model.hpp"
#include "core/hinet_generator.hpp"

namespace hinet {

enum class Scenario {
  kKloInterval,
  kHiNetInterval,
  kHiNetIntervalStable,
  kKloOne,
  kHiNetOne,
};

const char* scenario_name(Scenario s);

/// Stable machine-readable identifier ("hinet-interval", "klo-one", ...):
/// the spelling the CLI tools accept and the durable job specs store.
const char* scenario_cli_name(Scenario s);

/// Inverse of scenario_cli_name; nullopt for an unknown name.  Shared by
/// sweep_runner and hinetd so the two front-ends cannot drift apart.
std::optional<Scenario> scenario_from_cli_name(const std::string& name);

/// Every scenario, in declaration order (for "list what I accept" help
/// text and exhaustive tests).
std::span<const Scenario> all_scenarios();

struct ScenarioConfig {
  std::size_t nodes = 100;
  std::size_t heads = 30;  ///< generator head count; also the θ bound
  std::size_t k = 8;
  std::size_t alpha = 5;
  int hop_l = 2;
  /// Member re-affiliation probability per phase boundary (per round for
  /// the (1, L) scenarios, whose phases are single rounds).
  double reaffiliation_prob = 0.05;
  std::size_t churn_edges = 4;
  AssignmentMode assignment = AssignmentMode::kDistinctRandom;
  /// Run the full schedule instead of stopping at completion, so measured
  /// communication reflects the algorithm as specified (no oracle stop).
  bool run_full_schedule = true;
};

/// Phase structure a scenario's algorithm is scheduled for.
struct ScenarioSchedule {
  std::size_t phase_length = 0;  ///< T
  std::size_t phases = 0;        ///< M
  std::size_t rounds() const { return phase_length * phases; }
};

/// Generator configuration realising scenario `s` at (cfg, seed).  When
/// `schedule` is non-null it receives the phase structure.  Exposed so
/// tools (e.g. quickstart) can generate the trace themselves, inspect or
/// property-check it, and only then hand it to make_scenario_from_trace.
HiNetConfig scenario_generator(Scenario s, const ScenarioConfig& cfg,
                               std::uint64_t seed,
                               ScenarioSchedule* schedule = nullptr);

struct ScenarioRun {
  /// The runnable simulation; owns trace, hierarchy and processes.
  SimulationSpec spec;
  HiNetTraceStats trace_stats;
  /// CostParams with θ, n_m, n_r filled from the generated trace (rounded
  /// to the nearest integer), ready for the Table 2 formulas.
  CostParams analytic;
  std::size_t scheduled_rounds = 0;
};

ScenarioRun make_scenario(Scenario s, const ScenarioConfig& cfg,
                          std::uint64_t seed);

/// Builds the runnable spec from an already-generated trace (consumes it).
/// The trace must come from scenario_generator(s, cfg, seed) — the token
/// assignment is derived from the same seed.
ScenarioRun make_scenario_from_trace(Scenario s, const ScenarioConfig& cfg,
                                     HiNetTrace&& trace, std::uint64_t seed);

/// SpecFactory adapter for run_experiment (any ExecutionPolicy).
/// Pure function of the seed, hence safe for concurrent invocation and
/// for lockstep batching.
SpecFactory scenario_factory(Scenario s, const ScenarioConfig& cfg);

}  // namespace hinet
