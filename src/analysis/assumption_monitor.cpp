#include "analysis/assumption_monitor.hpp"

#include <algorithm>
#include <sstream>

#include "cluster/algorithms.hpp"
#include "core/hinet_properties.hpp"

namespace hinet {

namespace {

WindowReport judge_window(DynamicNetwork& net, HierarchyProvider& hier,
                          Round start, std::size_t t, int l) {
  WindowReport w;
  w.start = start;
  w.length = t;
  std::ostringstream os;

  // Definition 2: the head set is constant across the window.
  const auto head_reference = hier.hierarchy_at(start).heads();
  for (std::size_t i = 1; i < t && w.head_set_stable; ++i) {
    if (hier.hierarchy_at(start + i).heads() != head_reference) {
      w.head_set_stable = false;
      os << "head set changed at round " << start + i;
    }
  }

  // Definition 4: the entire hierarchy (roles + affiliations) is constant.
  // Copy the window-start view: over a streaming provider with a window
  // shorter than t, a reference into the ring would not survive the loop.
  const HierarchyView hier_reference = hier.hierarchy_at(start);
  for (std::size_t i = 1; i < t && w.hierarchy_stable; ++i) {
    if (!(hier.hierarchy_at(start + i) == hier_reference)) {
      w.hierarchy_stable = false;
      if (os.tellp() == 0) os << "hierarchy changed at round " << start + i;
    }
  }

  // Definition 5: a stable connected subgraph Υ spans the window's heads.
  const auto upsilon = stable_head_subgraph(net, hier, start, t);
  if (!upsilon) {
    w.head_connectivity = false;
    w.l_hop_ok = false;
    if (os.tellp() == 0) os << "no stable subgraph spans the heads";
  } else {
    // Definitions 6/7: bottleneck backbone distance between heads inside
    // Υ must be within l (judged against the window-start hierarchy, the
    // reference the stable subgraph was built for).
    const int measured = measure_l_hop_connectivity(hier_reference, *upsilon);
    if (measured < 0 || measured > l) {
      w.l_hop_ok = false;
      if (os.tellp() == 0) {
        os << "L-hop head connectivity is " << measured << " > " << l;
      }
    }
  }

  w.violation = os.str();
  return w;
}

}  // namespace

std::size_t AssumptionReport::violated_windows() const {
  std::size_t v = 0;
  for (const WindowReport& w : windows) {
    if (!w.ok()) ++v;
  }
  return v;
}

std::optional<Round> AssumptionReport::first_violation_round() const {
  for (const WindowReport& w : windows) {
    if (!w.ok()) return w.start;
  }
  return std::nullopt;
}

std::string AssumptionReport::to_string() const {
  std::ostringstream os;
  os << "(T=" << t << ", L=" << l << ") " << windows.size() << " windows, "
     << violated_windows() << " violated\n";
  for (const WindowReport& w : windows) {
    os << "  [" << w.start << ", " << w.start + w.length << ") ";
    if (w.ok()) {
      os << "ok";
    } else {
      os << "VIOLATED: " << w.violation;
    }
    if (w.completion_fraction_end >= 0.0) {
      os << " (completion " << w.completion_fraction_end << ")";
    }
    os << "\n";
  }
  return os.str();
}

AssumptionReport monitor_assumptions(Ctvg& trace, std::size_t rounds,
                                     std::size_t t, int l) {
  return monitor_assumptions(trace.topology(), trace.hierarchy(), rounds, t,
                             l);
}

AssumptionReport monitor_assumptions(DynamicNetwork& net,
                                     HierarchyProvider& hier,
                                     std::size_t rounds, std::size_t t,
                                     int l) {
  HINET_REQUIRE(t >= 1, "T must be >= 1");
  HINET_REQUIRE(l >= 1, "L must be >= 1");
  HINET_REQUIRE(net.node_count() == hier.node_count(),
                "topology and hierarchy node counts differ");
  AssumptionReport report;
  report.t = t;
  report.l = l;
  for (Round start = 0; start + t <= rounds; start += t) {
    report.windows.push_back(judge_window(net, hier, start, t, l));
  }
  return report;
}

void join_completion(AssumptionReport& report, const SimMetrics& metrics) {
  const auto& series = metrics.complete_nodes_per_round;
  const std::size_t n = metrics.per_node_tx_tokens.size();
  if (series.empty() || n == 0) return;
  for (WindowReport& w : report.windows) {
    // The run may have stopped early (stop_when_complete) or short of the
    // trace horizon; clamp to the last executed round.
    const std::size_t idx =
        std::min(w.start + w.length - 1, series.size() - 1);
    w.completion_fraction_end =
        static_cast<double>(series[idx]) / static_cast<double>(n);
  }
}

}  // namespace hinet
