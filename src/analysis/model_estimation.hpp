// Empirical model estimation: given an arbitrary CTVG trace (e.g. an
// edge-Markovian or mobility topology with a *maintained* hierarchy, not a
// generated one), measure which of the paper's stability properties hold
// and at what strength.  This operationalises the future-work direction of
// Section VI — "other flat dynamic network models ... should also be
// extended with clusters" — by quantifying the (T, L) a given flat
// dynamics actually provides.
#pragma once

#include "core/ctvg.hpp"
#include "core/hinet_properties.hpp"

namespace hinet {

struct StabilityEstimate {
  /// Largest T (aligned phases) for which Definition 2 / 4 / 5 holds over
  /// the inspected rounds.  T = 1 holds trivially for Defs. 2-4; a value
  /// of 0 for Def. 5 means even single rounds fail (heads disconnected).
  std::size_t max_t_stable_head_set = 0;
  std::size_t max_t_stable_hierarchy = 0;
  std::size_t max_t_head_connectivity = 0;

  /// Worst-case (max over rounds) Definition 6 measurement; -1 when the
  /// backbone is disconnected in some round.
  int worst_l = 0;

  /// Largest T for which the full Definition 8 holds at L = worst_l
  /// (0 when worst_l is -1).
  std::size_t max_t_hinet = 0;
};

/// Scans [0, rounds).  `t_cap` bounds the largest T tried (defaults to
/// rounds).  Cost is O(t_cap * rounds * n·deg) — intended for analysis-
/// sized traces, not hot paths.
StabilityEstimate estimate_stability(Ctvg& trace, std::size_t rounds,
                                     std::size_t t_cap = 0);

}  // namespace hinet
