// Supervised experiment execution: failure isolation, deadlines, retry,
// journal-backed resume.
//
// run_replicates (experiment.hpp) treats any replicate failure as fatal to
// the batch.  That is the right default for correctness tests, but a long
// sweep wants supervision instead: one replicate hitting a pathological
// seed, a wall-clock deadline, or a transient I/O error should cost that
// replicate (or just one retry), never the other 999.
//
// The supervisor wraps the same worker-pool executor with, per replicate:
//
//   - a wall-clock deadline, injected as EngineConfig::deadline_ms into
//     the spec so a stuck run throws DeadlineError instead of occupying
//     its worker forever;
//   - a structured error taxonomy (RunErrorClass) distinguishing caller
//     bugs (precondition), budget exhaustion (deadline), simulator bugs
//     (engine invariant) and environment trouble (I/O);
//   - retry with exponential backoff for the transient classes — a
//     deadline or I/O failure may pass on a second attempt, a
//     precondition or invariant violation never will;
//   - partial-result salvage: failures are recorded per replicate and the
//     batch aggregates what succeeded (AggregateResult::failed_replicates
//     keeps the loss visible and part of same_statistics);
//   - journal-backed resume: with a journal attached, completed
//     replicates are durably recorded as they finish and skipped on the
//     next run — a killed sweep resumes and aggregates byte-identically
//     (tests/analysis/test_journal.cpp, CI kill-and-resume smoke);
//   - cooperative cancellation: a cancel flag (e.g. set by SIGINT via
//     install_sigint_cancellation) stops workers at the next replicate
//     boundary; in-flight replicates finish and reach the journal, so an
//     interrupted sweep loses nothing it completed.
//
// All of the above composes with every ExecutionPolicy: the options-based
// entry points supervise lockstep batches (BatchEngine) exactly like
// single replicates, with the batch as the scheduling/cancellation unit.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/journal.hpp"

namespace hinet {

/// What kind of failure a replicate died of — drives the retry decision
/// and the failure report.
enum class RunErrorClass {
  kPrecondition,     ///< PreconditionError: caller misuse; never retried
  kDeadline,         ///< DeadlineError: wall budget exhausted; retryable
  kEngineInvariant,  ///< InvariantError: simulator bug; never retried
  kIo,               ///< IoError: environment trouble; retryable
  kOther,            ///< anything else; never retried (unknown = not safe)
};

const char* to_string(RunErrorClass c);

/// Maps a caught exception to its class by dynamic type.
RunErrorClass classify_run_error(const std::exception& e);

/// True for the classes worth a retry: transient by nature (deadline, I/O)
/// rather than deterministic (precondition, invariant — identical inputs
/// would fail identically).
bool is_transient(RunErrorClass c);

/// One replicate's terminal failure, after retries were exhausted.
struct RunError {
  RunErrorClass cls = RunErrorClass::kOther;
  std::size_t replicate = 0;
  std::uint64_t seed = 0;
  std::size_t attempts = 1;  ///< total attempts made (1 = no retry)
  std::string message;
};

struct SupervisorPolicy {
  /// Per-replicate wall-clock budget, injected as the spec's
  /// EngineConfig::deadline_ms (overriding the factory's value when > 0).
  /// 0 = no deadline.
  std::size_t deadline_ms = 0;

  /// Extra attempts per replicate for transient failures.  0 = fail on
  /// first error (still isolated to that replicate).
  std::size_t max_retries = 0;

  /// Backoff before retry i (1-based) is backoff_base_ms << (i-1).
  std::size_t backoff_base_ms = 10;

  /// Whether DeadlineError counts as transient.  True by default — on a
  /// loaded machine a deadline often passes on retry; set false when the
  /// deadline is meant as a hard per-replicate cost cap.
  bool retry_deadline = true;

  /// Completed-replicate store for crash-safe resume; not owned.  When
  /// set, recorded seeds are skipped (their results reused) and fresh
  /// completions are appended durably.
  ExperimentJournal* journal = nullptr;

  /// Cooperative cancellation flag; not owned.  Checked between
  /// replicates: when it reads true, workers stop pulling new work.
  const std::atomic<bool>* cancel = nullptr;

  /// Invoked (from worker threads) after each freshly executed replicate
  /// has been recorded in the journal (or completed, without one).  The
  /// kill-and-resume harness uses it to crash deterministically mid-sweep.
  std::function<void(std::size_t replicate, std::uint64_t seed)> on_progress;
};

/// Outcome of a supervised batch: per-replicate slots plus the failure
/// and provenance bookkeeping.
struct SupervisedBatch {
  /// Result per replicate index; nullopt = failed (see failures) or never
  /// ran (cancelled).
  std::vector<std::optional<ReplicateResult>> slots;

  /// Terminal failures, sorted by replicate index.
  std::vector<RunError> failures;

  std::size_t retried_replicates = 0;  ///< succeeded after >= 1 retry
  std::size_t from_journal = 0;        ///< reused from the journal
  bool cancelled = false;              ///< stopped early on the cancel flag

  std::size_t completed() const;
};

/// Executes the batch under the policy.  Never throws for per-replicate
/// failures (they land in `failures`); does throw for batch-level caller
/// errors (zero repetitions, seed overflow) and journal open problems.
///
/// options.policy picks the executor.  The batched modes supervise whole
/// lockstep batches: journal-recorded replicates are skipped up front (so
/// a resumed sweep only batches what is missing), each batch runs on a
/// BatchEngine with policy.deadline_ms injected per spec (the batch shares
/// the wall budget — see sim/batch_engine.hpp), fresh completions reach
/// the journal in index order within their batch, and transient failures
/// are retried as singleton runs after the batches drain (a singleton run
/// is byte-identical to a lockstep slot, and a retried deadline failure
/// then gets the whole budget to itself).  Cancellation is checked between
/// batches and between retries.
SupervisedBatch run_replicates_supervised(const SpecFactory& factory,
                                          const ExperimentOptions& options,
                                          const SupervisorPolicy& policy);

/// Historical signature: Threaded{jobs} execution (jobs == 1 behaves
/// serially, 0 = default_jobs()).  Prefer the options form.
SupervisedBatch run_replicates_supervised(const SpecFactory& factory,
                                          std::size_t repetitions,
                                          std::uint64_t base_seed,
                                          std::size_t jobs,
                                          const SupervisorPolicy& policy);

/// Aggregates a supervised batch: statistics over the successful slots in
/// index order (byte-identical to an unsupervised aggregate when nothing
/// failed), with failed/retried counts filled in.
AggregateResult aggregate_supervised(const SupervisedBatch& batch,
                                     double batch_seconds, std::size_t jobs);

/// run_replicates_supervised + aggregate_supervised.  Throws
/// ReplicateBatchError only when *no* replicate succeeded (there is
/// nothing to aggregate); partial failure is reported through
/// AggregateResult::failed_replicates instead.  Statistics (and the
/// stats_digest) do not depend on options.policy — a batched resumed sweep
/// aggregates byte-identically to a serial one.
AggregateResult run_experiment_supervised(const SpecFactory& factory,
                                          const ExperimentOptions& options,
                                          const SupervisorPolicy& policy);

/// Historical signature: Threaded{jobs} execution.  Prefer the options
/// form.
AggregateResult run_experiment_supervised(const SpecFactory& factory,
                                          std::size_t repetitions,
                                          std::uint64_t base_seed,
                                          std::size_t jobs,
                                          const SupervisorPolicy& policy);

/// Installs a SIGINT handler that sets (and never clears) an internal
/// cancellation flag, and returns a pointer to it for SupervisorPolicy::
/// cancel.  Install once per process; a second SIGINT restores the default
/// disposition, so a double ctrl-C still kills a wedged sweep.
const std::atomic<bool>* install_sigint_cancellation();

/// Like install_sigint_cancellation, but covers SIGTERM as well — the
/// signal a supervisor (systemd, CI, `kill`) sends for a clean shutdown.
/// Both signals share one flag: long-running tools (sweep_runner, hinetd)
/// treat either as "finish the in-flight unit, journal it, exit with the
/// shared transient status".  A second delivery of either signal restores
/// the default disposition, so a wedged process can still be killed.
const std::atomic<bool>* install_termination_cancellation();

}  // namespace hinet
