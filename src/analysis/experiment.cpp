#include "analysis/experiment.hpp"

#include <sstream>

namespace hinet {

std::string AggregateResult::to_string() const {
  std::ostringstream os;
  os << "reps=" << repetitions << " delivery=" << delivery_rate * 100.0
     << "% rounds{mean=" << rounds_to_completion.mean
     << "} tokens{mean=" << tokens_sent.mean << "}";
  return os.str();
}

SimMetrics run_once(PreparedRun run) {
  HINET_REQUIRE(run.net != nullptr, "run needs a network");
  Engine engine(*run.net, run.hierarchy, std::move(run.processes));
  return engine.run(run.engine);
}

AggregateResult run_experiment(const RunFactory& factory,
                               std::size_t repetitions,
                               std::uint64_t base_seed) {
  HINET_REQUIRE(repetitions >= 1, "need at least one repetition");
  std::vector<double> rounds, tokens, packets;
  std::size_t delivered = 0;
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    const SimMetrics m = run_once(factory(base_seed + rep));
    tokens.push_back(static_cast<double>(m.tokens_sent));
    packets.push_back(static_cast<double>(m.packets_sent));
    if (m.all_delivered) {
      ++delivered;
      rounds.push_back(static_cast<double>(m.rounds_to_completion));
    }
  }
  AggregateResult out;
  out.repetitions = repetitions;
  out.delivery_rate =
      static_cast<double>(delivered) / static_cast<double>(repetitions);
  out.rounds_to_completion = summarize(std::move(rounds));
  out.tokens_sent = summarize(std::move(tokens));
  out.packets_sent = summarize(std::move(packets));
  return out;
}

}  // namespace hinet
