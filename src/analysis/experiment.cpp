#include "analysis/experiment.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>

namespace hinet {

namespace {

// wall_ms is observability only — it is excluded from aggregate stats, never
// feeds simulation state, and the parallel runner stays byte-identical to
// serial regardless of timing.
// detlint-allow(banned-time): replicate wall-time is a bench-style timer
using Clock = std::chrono::steady_clock;

ReplicateResult run_one(const SpecFactory& factory, std::uint64_t seed) {
  const auto t0 = Clock::now();
  ReplicateResult out;
  out.metrics = run_simulation(factory(seed));
  out.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return out;
}

}  // namespace

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::vector<ReplicateResult> run_replicates(const SpecFactory& factory,
                                            std::size_t repetitions,
                                            std::uint64_t base_seed,
                                            std::size_t jobs) {
  HINET_REQUIRE(repetitions >= 1, "need at least one repetition");
  if (jobs == 0) jobs = default_jobs();
  std::vector<ReplicateResult> out(repetitions);

  if (jobs == 1 || repetitions == 1) {
    for (std::size_t rep = 0; rep < repetitions; ++rep) {
      out[rep] = run_one(factory, replicate_seed(base_seed, rep));
    }
    return out;
  }

  // Fixed-size pool pulling replicate indices from a shared counter.  Each
  // replicate writes only its own slot, so no result synchronisation is
  // needed; the first failure stops the pool and is rethrown after join.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t rep = next.fetch_add(1, std::memory_order_relaxed);
      if (rep >= repetitions) break;
      try {
        out[rep] = run_one(factory, replicate_seed(base_seed, rep));
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error == nullptr) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const std::size_t width = jobs < repetitions ? jobs : repetitions;
  std::vector<std::thread> pool;
  pool.reserve(width);
  for (std::size_t i = 0; i < width; ++i) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return out;
}

AggregateResult aggregate_replicates(const std::vector<ReplicateResult>& reps,
                                     double batch_seconds, std::size_t jobs) {
  std::vector<double> rounds, tokens, packets, completion, coverage, wall;
  std::size_t delivered = 0;
  for (const ReplicateResult& r : reps) {
    tokens.push_back(static_cast<double>(r.metrics.tokens_sent));
    packets.push_back(static_cast<double>(r.metrics.packets_sent));
    completion.push_back(r.metrics.completion_fraction());
    coverage.push_back(r.metrics.token_coverage());
    wall.push_back(r.wall_ms);
    if (r.metrics.all_delivered) {
      ++delivered;
      rounds.push_back(static_cast<double>(r.metrics.rounds_to_completion));
    }
  }
  AggregateResult out;
  out.repetitions = reps.size();
  out.delivery_rate =
      static_cast<double>(delivered) / static_cast<double>(reps.size());
  out.rounds_to_completion = summarize(std::move(rounds));
  out.tokens_sent = summarize(std::move(tokens));
  out.packets_sent = summarize(std::move(packets));
  out.completion_fraction = summarize(std::move(completion));
  out.token_coverage = summarize(std::move(coverage));
  out.timing.replicate_wall_ms = summarize(std::move(wall));
  out.timing.wall_seconds = batch_seconds;
  out.timing.runs_per_second =
      batch_seconds > 0.0
          ? static_cast<double>(reps.size()) / batch_seconds
          : 0.0;
  out.timing.jobs = jobs;
  return out;
}

bool AggregateResult::same_statistics(const AggregateResult& other) const {
  return rounds_to_completion == other.rounds_to_completion &&
         tokens_sent == other.tokens_sent &&
         packets_sent == other.packets_sent &&
         completion_fraction == other.completion_fraction &&
         token_coverage == other.token_coverage &&
         delivery_rate == other.delivery_rate &&
         repetitions == other.repetitions;
}

std::string AggregateResult::to_string() const {
  std::ostringstream os;
  os << "reps=" << repetitions << " delivery=" << delivery_rate * 100.0
     << "% rounds{mean=" << rounds_to_completion.mean
     << "} tokens{mean=" << tokens_sent.mean << "}";
  if (delivery_rate < 1.0) {
    os << " completion{mean=" << completion_fraction.mean
       << "} coverage{mean=" << token_coverage.mean << "}";
  }
  os << " jobs=" << timing.jobs << " throughput=" << timing.runs_per_second
     << " runs/s";
  return os.str();
}

AggregateResult run_experiment(const SpecFactory& factory,
                               std::size_t repetitions,
                               std::uint64_t base_seed) {
  return run_experiment_parallel(factory, repetitions, base_seed, 1);
}

AggregateResult run_experiment_parallel(const SpecFactory& factory,
                                        std::size_t repetitions,
                                        std::uint64_t base_seed,
                                        std::size_t jobs) {
  if (jobs == 0) jobs = default_jobs();
  const auto t0 = Clock::now();
  const std::vector<ReplicateResult> results =
      run_replicates(factory, repetitions, base_seed, jobs);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return aggregate_replicates(results, seconds, jobs);
}

}  // namespace hinet
