#include "analysis/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>

#include "sim/batch_engine.hpp"

namespace hinet {

const char* to_string(ExecutionPolicy::Mode m) {
  switch (m) {
    case ExecutionPolicy::Mode::kSerial:
      return "serial";
    case ExecutionPolicy::Mode::kThreaded:
      return "threaded";
    case ExecutionPolicy::Mode::kBatched:
      return "batched";
    case ExecutionPolicy::Mode::kThreadedBatched:
      return "threaded-batched";
  }
  return "?";
}

std::size_t ExecutionPolicy::effective_jobs() const {
  if (!is_threaded()) return 1;
  return jobs == 0 ? default_jobs() : jobs;
}

ReplicateBatchError::ReplicateBatchError(std::vector<ReplicateFailure> failures)
    : std::runtime_error(format(failures)), failures_(std::move(failures)) {}

std::string ReplicateBatchError::format(
    const std::vector<ReplicateFailure>& failures) {
  std::ostringstream os;
  os << failures.size() << " replicate(s) failed:";
  for (const ReplicateFailure& f : failures) {
    os << "\n  replicate " << f.replicate << " (seed " << f.seed
       << "): " << f.message;
  }
  return os.str();
}

namespace {

// wall_ms is observability only — it is excluded from aggregate stats, never
// feeds simulation state, and the parallel runner stays byte-identical to
// serial regardless of timing.
// detlint-allow(banned-time): replicate wall-time is a bench-style timer
using Clock = std::chrono::steady_clock;

ReplicateResult run_one(const SpecFactory& factory, std::uint64_t seed) {
  const auto t0 = Clock::now();
  ReplicateResult out;
  out.metrics = run_simulation(factory(seed));
  out.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return out;
}

}  // namespace

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::vector<ReplicateResult> run_replicates(const SpecFactory& factory,
                                            std::size_t repetitions,
                                            std::uint64_t base_seed,
                                            std::size_t jobs) {
  HINET_REQUIRE(repetitions >= 1, "need at least one repetition");
  HINET_REQUIRE(
      repetitions - 1 <= std::numeric_limits<std::uint64_t>::max() - base_seed,
      "replicate seed overflow: base_seed + repetitions - 1 wraps past "
      "2^64, which would alias replicates onto low seeds and correlate "
      "'independent' repetitions — lower the base seed or the repetition "
      "count");
  if (jobs == 0) jobs = default_jobs();
  std::vector<ReplicateResult> out(repetitions);

  // Failures are collected, never fail-fast: every replicate runs, each
  // writes only its own slot (or failure record), and the batch reports the
  // full failure list at the end.  One debugging cycle sees every bad seed.
  std::mutex failure_mutex;
  std::vector<ReplicateFailure> failures;
  auto run_slot = [&](std::size_t rep) {
    const std::uint64_t seed = replicate_seed(base_seed, rep);
    try {
      out[rep] = run_one(factory, seed);
    } catch (const std::exception& e) {
      const std::lock_guard<std::mutex> lock(failure_mutex);
      failures.push_back(ReplicateFailure{rep, seed, e.what()});
    } catch (...) {
      const std::lock_guard<std::mutex> lock(failure_mutex);
      failures.push_back(ReplicateFailure{rep, seed, "unknown exception"});
    }
  };

  if (jobs == 1 || repetitions == 1) {
    for (std::size_t rep = 0; rep < repetitions; ++rep) run_slot(rep);
  } else {
    // Fixed-size pool pulling replicate indices from a shared counter.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      while (true) {
        const std::size_t rep = next.fetch_add(1, std::memory_order_relaxed);
        if (rep >= repetitions) break;
        run_slot(rep);
      }
    };
    const std::size_t width = jobs < repetitions ? jobs : repetitions;
    std::vector<std::thread> pool;
    pool.reserve(width);
    for (std::size_t i = 0; i < width; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  if (!failures.empty()) {
    // Failure order depends on thread scheduling; report by replicate index
    // so the same failing batch always reads the same.
    std::sort(failures.begin(), failures.end(),
              [](const ReplicateFailure& a, const ReplicateFailure& b) {
                return a.replicate < b.replicate;
              });
    throw ReplicateBatchError(std::move(failures));
  }
  return out;
}

std::vector<ReplicateResult> run_replicates_lockstep(
    const SpecFactory& factory, std::size_t repetitions,
    std::uint64_t base_seed, std::size_t replicates_per_batch,
    std::size_t jobs) {
  HINET_REQUIRE(repetitions >= 1, "need at least one repetition");
  HINET_REQUIRE(replicates_per_batch >= 1,
                "replicates_per_batch must be at least 1");
  HINET_REQUIRE(
      repetitions - 1 <= std::numeric_limits<std::uint64_t>::max() - base_seed,
      "replicate seed overflow: base_seed + repetitions - 1 wraps past "
      "2^64, which would alias replicates onto low seeds and correlate "
      "'independent' repetitions — lower the base seed or the repetition "
      "count");
  if (jobs == 0) jobs = default_jobs();
  std::vector<ReplicateResult> out(repetitions);

  // Same collect-all-failures contract as run_replicates: every replicate
  // gets its chance, the batch error lists every bad seed at the end.
  std::mutex failure_mutex;
  std::vector<ReplicateFailure> failures;
  auto record_failure = [&](std::size_t rep, const std::string& message) {
    const std::lock_guard<std::mutex> lock(failure_mutex);
    failures.push_back(
        ReplicateFailure{rep, replicate_seed(base_seed, rep), message});
  };

  // Lockstep groups cover consecutive index ranges [gR, (g+1)R) so the
  // mapping replicate -> seed -> result slot is scheduling-independent.
  const std::size_t group_count =
      (repetitions + replicates_per_batch - 1) / replicates_per_batch;
  auto run_group = [&](std::size_t group) {
    const std::size_t begin = group * replicates_per_batch;
    const std::size_t end =
        std::min(begin + replicates_per_batch, repetitions);

    // Build the group's specs.  A throwing factory costs only its own
    // replicate; the rest of the group still runs in lockstep.
    std::vector<SimulationSpec> specs;
    std::vector<std::size_t> members;  // replicate index per spec slot
    specs.reserve(end - begin);
    members.reserve(end - begin);
    for (std::size_t rep = begin; rep < end; ++rep) {
      try {
        specs.push_back(factory(replicate_seed(base_seed, rep)));
        members.push_back(rep);
      } catch (const std::exception& e) {
        record_failure(rep, e.what());
      } catch (...) {
        record_failure(rep, "unknown exception");
      }
    }
    if (specs.empty()) return;

    const auto t0 = Clock::now();
    try {
      BatchEngine engine(std::move(specs));
      BatchOutcome outcome = engine.run();
      // Lockstep interleaves rounds across the group, so a single
      // replicate's wall time is not observable; split the group wall
      // evenly (timing only — excluded from same_statistics).
      const double wall_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
      const double per_replicate_ms =
          wall_ms / static_cast<double>(members.size());
      for (std::size_t slot = 0; slot < members.size(); ++slot) {
        if (!outcome.slots[slot].has_value()) continue;
        out[members[slot]] =
            ReplicateResult{std::move(*outcome.slots[slot]), per_replicate_ms};
      }
      for (const BatchReplicateFailure& f : outcome.failures) {
        record_failure(members[f.index], f.message);
      }
    } catch (const std::exception& e) {
      // Batch assembly failed (spec validation, channel homogeneity):
      // not attributable to one replicate, so the whole group reports it.
      for (const std::size_t rep : members) record_failure(rep, e.what());
    } catch (...) {
      for (const std::size_t rep : members) {
        record_failure(rep, "unknown exception");
      }
    }
  };

  if (jobs == 1 || group_count == 1) {
    for (std::size_t group = 0; group < group_count; ++group) run_group(group);
  } else {
    // Worker pool pulling whole lockstep groups from a shared counter —
    // the ThreadedBatched composition.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      while (true) {
        const std::size_t group = next.fetch_add(1, std::memory_order_relaxed);
        if (group >= group_count) break;
        run_group(group);
      }
    };
    const std::size_t width = jobs < group_count ? jobs : group_count;
    std::vector<std::thread> pool;
    pool.reserve(width);
    for (std::size_t i = 0; i < width; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  if (!failures.empty()) {
    std::sort(failures.begin(), failures.end(),
              [](const ReplicateFailure& a, const ReplicateFailure& b) {
                return a.replicate < b.replicate;
              });
    throw ReplicateBatchError(std::move(failures));
  }
  return out;
}

AggregateResult aggregate_replicates(const std::vector<ReplicateResult>& reps,
                                     double batch_seconds, std::size_t jobs) {
  std::vector<double> rounds, tokens, packets, completion, coverage, wall;
  std::size_t delivered = 0;
  for (const ReplicateResult& r : reps) {
    tokens.push_back(static_cast<double>(r.metrics.tokens_sent));
    packets.push_back(static_cast<double>(r.metrics.packets_sent));
    completion.push_back(r.metrics.completion_fraction());
    coverage.push_back(r.metrics.token_coverage());
    wall.push_back(r.wall_ms);
    if (r.metrics.all_delivered) {
      ++delivered;
      rounds.push_back(static_cast<double>(r.metrics.rounds_to_completion));
    }
  }
  AggregateResult out;
  out.repetitions = reps.size();
  out.delivery_rate =
      static_cast<double>(delivered) / static_cast<double>(reps.size());
  out.rounds_to_completion = summarize(std::move(rounds));
  out.tokens_sent = summarize(std::move(tokens));
  out.packets_sent = summarize(std::move(packets));
  out.completion_fraction = summarize(std::move(completion));
  out.token_coverage = summarize(std::move(coverage));
  out.timing.replicate_wall_ms = summarize(std::move(wall));
  out.timing.wall_seconds = batch_seconds;
  out.timing.runs_per_second =
      batch_seconds > 0.0
          ? static_cast<double>(reps.size()) / batch_seconds
          : 0.0;
  out.timing.jobs = jobs;
  return out;
}

bool AggregateResult::same_statistics(const AggregateResult& other) const {
  return rounds_to_completion == other.rounds_to_completion &&
         tokens_sent == other.tokens_sent &&
         packets_sent == other.packets_sent &&
         completion_fraction == other.completion_fraction &&
         token_coverage == other.token_coverage &&
         delivery_rate == other.delivery_rate &&
         repetitions == other.repetitions &&
         failed_replicates == other.failed_replicates;
}

namespace {

// FNV-1a, 64-bit.  Doubles enter as IEEE-754 bit patterns so the digest is
// exactly as strict as same_statistics' bitwise comparison.
void digest_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001b3ULL;
  }
}

void digest_f64(std::uint64_t& h, double v) {
  digest_u64(h, std::bit_cast<std::uint64_t>(v));
}

void digest_summary(std::uint64_t& h, const Summary& s) {
  digest_u64(h, s.n);
  digest_f64(h, s.mean);
  digest_f64(h, s.stddev);
  digest_f64(h, s.min);
  digest_f64(h, s.max);
  digest_f64(h, s.p50);
  digest_f64(h, s.p95);
}

}  // namespace

std::uint64_t AggregateResult::stats_digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  digest_summary(h, rounds_to_completion);
  digest_summary(h, tokens_sent);
  digest_summary(h, packets_sent);
  digest_summary(h, completion_fraction);
  digest_summary(h, token_coverage);
  digest_f64(h, delivery_rate);
  digest_u64(h, repetitions);
  digest_u64(h, failed_replicates);
  return h;
}

std::string AggregateResult::to_string() const {
  std::ostringstream os;
  os << "reps=" << repetitions << " delivery=" << delivery_rate * 100.0
     << "% rounds{mean=" << rounds_to_completion.mean
     << "} tokens{mean=" << tokens_sent.mean << "}";
  if (delivery_rate < 1.0) {
    os << " completion{mean=" << completion_fraction.mean
       << "} coverage{mean=" << token_coverage.mean << "}";
  }
  os << " jobs=" << timing.jobs << " throughput=" << timing.runs_per_second
     << " runs/s";
  return os.str();
}

AggregateResult run_experiment(const SpecFactory& factory,
                               const ExperimentOptions& options) {
  const ExecutionPolicy& policy = options.policy;
  const std::size_t jobs = policy.effective_jobs();
  const auto t0 = Clock::now();
  std::vector<ReplicateResult> results;
  if (policy.is_batched()) {
    results = run_replicates_lockstep(factory, options.repetitions,
                                      options.base_seed,
                                      policy.replicates_per_batch, jobs);
  } else {
    results =
        run_replicates(factory, options.repetitions, options.base_seed, jobs);
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  AggregateResult out = aggregate_replicates(results, seconds, jobs);
  out.timing.replicates_per_batch =
      policy.is_batched() ? policy.replicates_per_batch : 1;
  return out;
}

}  // namespace hinet
