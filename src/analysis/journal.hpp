// Experiment journal: crash-safe record of completed replicates.
//
// A sweep that dies — OOM kill, node preemption, ctrl-C — should not cost
// the replicates it already finished.  The journal is an append-only file
// of (replicate_seed, ReplicateResult) records; the supervised runner
// appends each replicate the moment it completes (fsynced, CRC-per-record)
// and, on restart, skips every seed the journal already holds.  Because
// replicate statistics are a deterministic function of the seed, a resumed
// sweep aggregates byte-identically to an uninterrupted one — pinned by
// tests/analysis/test_journal.cpp and the CI kill-and-resume smoke step.
//
// On-disk format (little-endian):
//
//   file header : u32 magic 'HJNL' · u16 version · u16 reserved(0)
//   record      : u32 record magic · u64 payload length · u32 crc32(payload)
//                 · payload { u64 seed · f64 wall_ms · SimMetrics }
//
// Appends are write()-then-fdatasync, so a record either exists completely
// or not at all as far as a resuming process is concerned.  Opening the
// journal replays every record; a torn or corrupt *tail* (the expected
// shape of a crash mid-append) is truncated away and reported via
// dropped_bytes() — the intact prefix is salvaged, never discarded.
// Corruption that cannot be the tail of a sane journal (bad file header,
// wrong version) throws IoError instead: that file is not this journal.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"

namespace hinet {

class ExperimentJournal {
 public:
  static constexpr std::uint32_t kMagic = 0x4c'4e'4a'48u;       // "HJNL"
  static constexpr std::uint16_t kVersion = 1;
  static constexpr std::uint32_t kRecordMagic = 0x44'52'4a'48u;  // "HJRD"

  /// Opens (creating if absent) and replays the journal at `path`.
  /// Throws IoError when the file exists but is not a journal of this
  /// version, or on I/O failure.  A corrupt tail is truncated and counted
  /// in dropped_bytes().
  explicit ExperimentJournal(std::string path);
  ~ExperimentJournal();

  ExperimentJournal(const ExperimentJournal&) = delete;
  ExperimentJournal& operator=(const ExperimentJournal&) = delete;

  const std::string& path() const { return path_; }

  /// Number of completed replicates on record.
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  bool contains(std::uint64_t seed) const;

  /// The recorded result for `seed`, if any.
  std::optional<ReplicateResult> lookup(std::uint64_t seed) const;

  /// Recorded seeds in ascending order (deterministic).
  std::vector<std::uint64_t> seeds() const;

  /// Durably appends one completed replicate: the record is written and
  /// fdatasync'd before this returns, so a crash immediately after cannot
  /// lose it.  Thread-safe.  Re-appending a recorded seed is a
  /// PreconditionError (the supervised runner checks contains() first).
  void append(std::uint64_t seed, const ReplicateResult& result);

  /// Bytes of torn/corrupt tail dropped when the journal was opened
  /// (0 for a cleanly written file).
  std::size_t dropped_bytes() const { return dropped_bytes_; }

 private:
  void replay_and_truncate(std::vector<std::uint8_t> raw);
  void write_all(const std::uint8_t* data, std::size_t len);

  mutable std::mutex mutex_;
  std::string path_;
  int fd_ = -1;
  std::map<std::uint64_t, ReplicateResult> entries_;
  std::size_t dropped_bytes_ = 0;
};

}  // namespace hinet
