// Engine checkpoint/resume over streaming traces.
//
// The scenario × channel matrix in test_snapshot.cpp already runs over
// streaming specs (make_scenario builds them via make_hinet_stream); this
// suite pins the streaming-specific guarantees on top:
//   - a snapshot carries the generator's trace state, so restore resumes
//     synthesis at the frontier WITHOUT replaying the prefix;
//   - the trace-state section is presence-checked: a snapshot taken over
//     a streaming network cannot be restored into a materialized spec
//     (and vice versa);
//   - the capability composes through FaultyNetwork decoration.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "analysis/assignment.hpp"
#include "baseline/klo.hpp"
#include "graph/markovian.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "sim/snapshot.hpp"

namespace hinet {
namespace {

constexpr std::size_t kNodes = 16;
constexpr std::size_t kRounds = 24;
constexpr std::size_t kTokens = 4;

MarkovianConfig stream_config() {
  MarkovianConfig cfg;
  cfg.nodes = kNodes;
  cfg.rounds = kRounds;
  cfg.initial = 0.3;
  cfg.birth = 0.15;
  cfg.death = 0.2;
  cfg.seed = 77;
  return cfg;
}

std::vector<ProcessPtr> make_processes() {
  Rng rng(123);
  const auto initial =
      assign_tokens(kNodes, kTokens, AssignmentMode::kDistinctRandom, rng);
  KloFloodParams p;
  p.k = kTokens;
  p.rounds = kRounds;
  return make_klo_flood_processes(initial, p);
}

EngineConfig run_config() {
  EngineConfig cfg;
  cfg.max_rounds = kRounds;
  cfg.stop_when_complete = false;
  return cfg;
}

TEST(SnapshotStreaming, ResumeContinuesAtFrontierWithoutReplay) {
  // Uninterrupted reference.
  EdgeMarkovianNetwork ref_net(stream_config());
  Engine ref(ref_net, nullptr, make_processes());
  const SimMetrics expected = ref.run(run_config());

  // Interrupted run: snapshot mid-flight.
  EdgeMarkovianNetwork net_a(stream_config());
  Engine a(net_a, nullptr, make_processes());
  a.start(run_config());
  for (int i = 0; i < 9; ++i) ASSERT_TRUE(a.step());
  const SimSnapshot snap = a.snapshot();

  // Restore into a FRESH engine over a FRESH network: the trace state in
  // the snapshot must put the generator at the frontier...
  EdgeMarkovianNetwork net_b(stream_config());
  Engine b(net_b, nullptr, make_processes());
  b.restore(snap);
  EXPECT_EQ(net_b.frontier(), 9u);

  while (b.step()) {
  }
  const SimMetrics resumed = b.finish();
  EXPECT_TRUE(resumed == expected);
  // ...and the resumed run must never have replayed rounds 0..8.
  EXPECT_EQ(net_b.rewinds(), 0u);
}

TEST(SnapshotStreaming, StreamingMaterializedMismatchIsRejected) {
  EdgeMarkovianNetwork net(stream_config());
  Engine streaming(net, nullptr, make_processes());
  streaming.start(run_config());
  ASSERT_TRUE(streaming.step());
  const SimSnapshot snap = streaming.snapshot();

  // Same trace, materialized: structurally different run — must refuse.
  GraphSequence seq = make_edge_markovian_trace(stream_config());
  Engine materialized(seq, nullptr, make_processes());
  EXPECT_THROW(materialized.restore(snap), IoError);

  // And the mirror image: a materialized snapshot into a streaming spec.
  GraphSequence seq2 = make_edge_markovian_trace(stream_config());
  Engine mat2(seq2, nullptr, make_processes());
  mat2.start(run_config());
  ASSERT_TRUE(mat2.step());
  const SimSnapshot mat_snap = mat2.snapshot();
  EdgeMarkovianNetwork net2(stream_config());
  Engine stream2(net2, nullptr, make_processes());
  EXPECT_THROW(stream2.restore(mat_snap), IoError);
}

TEST(SnapshotStreaming, ComposesThroughFaultyNetwork) {
  FaultPlan plan;
  CrashEvent crash;
  crash.node = 2;
  crash.round = 4;
  crash.recovery = 14;
  plan.crashes.push_back(crash);

  EdgeMarkovianNetwork ref_net(stream_config());
  FaultyNetwork ref_faulty(ref_net, plan);
  Engine ref(ref_faulty, nullptr, make_processes());
  const SimMetrics expected = ref.run(run_config());

  EdgeMarkovianNetwork net_a(stream_config());
  FaultyNetwork faulty_a(net_a, plan);
  Engine a(faulty_a, nullptr, make_processes());
  a.start(run_config());
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(a.step());
  const SimSnapshot snap = a.snapshot();

  EdgeMarkovianNetwork net_b(stream_config());
  FaultyNetwork faulty_b(net_b, plan);
  Engine b(faulty_b, nullptr, make_processes());
  b.restore(snap);
  EXPECT_EQ(net_b.frontier(), 7u);
  while (b.step()) {
  }
  EXPECT_TRUE(b.finish() == expected);
  EXPECT_EQ(net_b.rewinds(), 0u);
}

}  // namespace
}  // namespace hinet
