// Corruption fuzz for the two durable formats: snapshot files and
// experiment journals.
//
// Policy under test: a snapshot file is all-or-nothing (any truncation,
// bit flip or version skew is rejected with an IoError diagnostic — a
// checkpoint is only useful if it is exactly right), while a journal is
// salvage-the-prefix (records are individually CRC-framed and fsynced, so
// corruption anywhere is treated as a torn tail: the intact prefix
// survives, the rest is dropped and accounted for).  Every mutation in
// here must produce a typed exception or a clean salvage — never UB; the
// CI ASan job runs this suite (label: robustness) to enforce the "never"
// part byte by byte.
#include "sim/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/journal.hpp"
#include "analysis/scenarios.hpp"
#include "sim/engine.hpp"

namespace hinet {
namespace {

ScenarioConfig tiny_config() {
  ScenarioConfig cfg;
  cfg.nodes = 12;
  cfg.heads = 3;
  cfg.k = 3;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  return cfg;
}

SimulationSpec tiny_spec(std::uint64_t seed) {
  return scenario_factory(Scenario::kHiNetOne, tiny_config())(seed);
}

/// A valid mid-run snapshot of the tiny spec.
SimSnapshot make_valid_snapshot() {
  SimulationSpec spec = tiny_spec(5);
  const EngineConfig cfg = spec.engine;
  Engine eng(std::move(spec));
  eng.start(cfg);
  for (int i = 0; i < 3; ++i) eng.step();
  return eng.snapshot();
}

std::string fuzz_path(const char* tag) {
  return ::testing::TempDir() + "hinet_fuzz_" + tag + ".bin";
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(f),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

TEST(SnapshotFuzz, EveryTruncationOfTheFileIsRejected) {
  const SimSnapshot snap = make_valid_snapshot();
  const std::string path = fuzz_path("trunc");
  save_snapshot_file(snap, path);
  const std::vector<std::uint8_t> good = read_file(path);
  ASSERT_GT(good.size(), 18u);

  for (std::size_t len = 0; len < good.size(); ++len) {
    write_file(path, {good.begin(), good.begin() + static_cast<std::ptrdiff_t>(len)});
    try {
      load_snapshot_file(path);
      FAIL() << "truncation to " << len << " bytes was accepted";
    } catch (const IoError& e) {
      EXPECT_STRNE(e.what(), "") << "empty diagnostic at length " << len;
    }
  }
  std::remove(path.c_str());
}

TEST(SnapshotFuzz, EverySingleBitFlipInTheFileIsRejected) {
  const SimSnapshot snap = make_valid_snapshot();
  const std::string path = fuzz_path("flip");
  save_snapshot_file(snap, path);
  const std::vector<std::uint8_t> good = read_file(path);

  for (std::size_t i = 0; i < good.size(); ++i) {
    std::vector<std::uint8_t> bad = good;
    bad[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
    write_file(path, bad);
    try {
      load_snapshot_file(path);
      FAIL() << "bit flip at byte " << i << " was accepted";
    } catch (const IoError& e) {
      EXPECT_STRNE(e.what(), "") << "empty diagnostic at byte " << i;
    }
  }
  // The pristine bytes still load: the harness flips, not the container.
  write_file(path, good);
  EXPECT_EQ(load_snapshot_file(path).payload, snap.payload);
  std::remove(path.c_str());
}

TEST(SnapshotFuzz, VersionSkewIsRejectedWithAVersionDiagnostic) {
  const SimSnapshot snap = make_valid_snapshot();
  const std::string path = fuzz_path("version");
  save_snapshot_file(snap, path);
  std::vector<std::uint8_t> bytes = read_file(path);
  // Container layout: u32 magic · u16 version · ...
  bytes[4] = static_cast<std::uint8_t>(SimSnapshot::kVersion + 1);
  bytes[5] = 0;
  write_file(path, bytes);
  try {
    load_snapshot_file(path);
    FAIL() << "future version was accepted";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << "diagnostic does not mention the version: " << e.what();
  }
  std::remove(path.c_str());
}

TEST(SnapshotFuzz, MissingFileIsAnIoErrorNamingThePath) {
  const std::string path = fuzz_path("does_not_exist");
  std::remove(path.c_str());
  try {
    load_snapshot_file(path);
    FAIL() << "missing file was accepted";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "diagnostic does not name the path: " << e.what();
  }
}

TEST(SnapshotFuzz, EveryPayloadTruncationIsRejectedByRestore) {
  // Bypasses the container CRC and attacks Engine::restore directly with
  // structurally short payloads; the bounds-checked ByteReader must turn
  // every missing byte into an IoError, and a failed restore must leave
  // the engine fresh (restorable again).
  const SimSnapshot snap = make_valid_snapshot();
  Engine eng(tiny_spec(5));
  for (std::size_t len = 0; len < snap.payload.size(); ++len) {
    SimSnapshot cut;
    cut.payload.assign(snap.payload.begin(), snap.payload.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(eng.restore(cut), IoError) << "payload cut to " << len;
  }
  // The same engine object accepts the intact snapshot afterwards.
  eng.restore(snap);
  while (eng.step()) {
  }
  const SimMetrics resumed = eng.finish();

  Engine golden(tiny_spec(5));
  EXPECT_EQ(resumed, golden.run());
}

TEST(SnapshotFuzz, MutatedPayloadsNeverCrashRestore) {
  // Without the container CRC some flips are undetectable in principle
  // (e.g. a flipped phase counter is just a different valid state), so the
  // contract is weaker than rejection: restore either throws a typed
  // exception or produces an engine that can run to completion — it never
  // corrupts memory.  ASan turns "never" into a hard check.
  const SimSnapshot snap = make_valid_snapshot();
  for (std::size_t i = 0; i < snap.payload.size(); ++i) {
    SimSnapshot bad = snap;
    bad.payload[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
    Engine eng(tiny_spec(5));
    try {
      eng.restore(bad);
      // A flip can land in the stored max_rounds, so the run length is no
      // longer trusted; the guard bounds the walk without weakening the
      // no-UB property under test.
      std::size_t guard = 0;
      while (eng.step() && ++guard < 10000) {
      }
      eng.finish();
    } catch (const std::exception&) {
      // Typed rejection is fine; silent memory corruption is what ASan
      // would flag.
    }
  }
}

TEST(JournalFuzz, BadFileHeaderIsRefusedNotSalvaged) {
  const std::string path = fuzz_path("journal_header");
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "this is not a journal";
  }
  EXPECT_THROW(ExperimentJournal j(path), IoError);
  std::remove(path.c_str());
}

TEST(JournalFuzz, EveryCorruptionBeyondTheHeaderSalvagesAPrefix) {
  // Build a journal of three real replicate records, then corrupt one bit
  // at every offset past the 8-byte file header.  Reopening must salvage:
  // some prefix of intact records plus positive dropped-byte accounting —
  // and the salvaged records must decode to the original metrics.
  const std::string path = fuzz_path("journal_flip");
  std::remove(path.c_str());
  ReplicateResult results[3];
  {
    ExperimentJournal j(path);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Engine eng(tiny_spec(seed));
      results[seed - 1].metrics = eng.run();
      results[seed - 1].wall_ms = 1.0;
      j.append(seed, results[seed - 1]);
    }
  }
  const std::vector<std::uint8_t> good = read_file(path);
  ASSERT_GT(good.size(), 8u);

  for (std::size_t i = 8; i < good.size(); ++i) {
    std::vector<std::uint8_t> bad = good;
    bad[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
    write_file(path, bad);
    ExperimentJournal j(path);
    EXPECT_LE(j.size(), 3u) << "byte " << i;
    EXPECT_GT(j.dropped_bytes(), 0u)
        << "corruption at byte " << i << " went unnoticed";
    for (std::uint64_t seed = 1; seed <= j.size(); ++seed) {
      const auto got = j.lookup(seed);
      ASSERT_TRUE(got.has_value()) << "byte " << i << " seed " << seed;
      EXPECT_EQ(got->metrics, results[seed - 1].metrics)
          << "byte " << i << " seed " << seed;
    }
  }
  std::remove(path.c_str());
}

TEST(JournalFuzz, EveryTruncationBeyondTheHeaderSalvagesAPrefix) {
  const std::string path = fuzz_path("journal_trunc");
  std::remove(path.c_str());
  {
    ExperimentJournal j(path);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Engine eng(tiny_spec(seed));
      ReplicateResult r;
      r.metrics = eng.run();
      j.append(seed, r);
    }
  }
  const std::vector<std::uint8_t> good = read_file(path);

  std::size_t previous_records = 0;
  for (std::size_t len = 8; len < good.size(); ++len) {
    write_file(path, {good.begin(), good.begin() + static_cast<std::ptrdiff_t>(len)});
    ExperimentJournal j(path);
    EXPECT_LE(j.size(), 3u) << "length " << len;
    // Salvage is monotone: a longer intact prefix never yields fewer
    // records.
    EXPECT_GE(j.size(), previous_records) << "length " << len;
    previous_records = j.size();
  }
  EXPECT_EQ(previous_records, 2u);  // one byte short of the last record
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hinet
