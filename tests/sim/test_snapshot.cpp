// Engine checkpoint/resume: the byte-identity guarantee and the API
// contract.
//
// The load-bearing test is the scenario × channel matrix: for every
// evaluation scenario of the paper (Section V) under every channel model
// with cross-round state, snapshot the run mid-flight, push the snapshot
// through the on-disk container (save + load, so the CRC/framing path is
// exercised too), restore into a freshly built identical spec and run to
// the end — the final SimMetrics must equal the uninterrupted run's via
// the exhaustive defaulted operator==.  The remaining tests pin the
// misuse surface: snapshot/restore called at the wrong time, restored
// into the wrong spec, or used with processes that opted out of
// checkpointing must all fail loudly with the documented exception types.
#include "sim/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "analysis/scenarios.hpp"
#include "baseline/flooding.hpp"
#include "graph/generators.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"

namespace hinet {
namespace {

enum class ChannelKind { kPerfect, kLossy, kCollision, kGilbertElliott };

const char* channel_name(ChannelKind c) {
  switch (c) {
    case ChannelKind::kPerfect:
      return "perfect";
    case ChannelKind::kLossy:
      return "lossy";
    case ChannelKind::kCollision:
      return "collision";
    case ChannelKind::kGilbertElliott:
      return "gilbert-elliott";
  }
  return "?";
}

constexpr Scenario kAllScenarios[] = {
    Scenario::kKloInterval, Scenario::kHiNetInterval,
    Scenario::kHiNetIntervalStable, Scenario::kKloOne, Scenario::kHiNetOne};

constexpr ChannelKind kAllChannels[] = {
    ChannelKind::kPerfect, ChannelKind::kLossy, ChannelKind::kCollision,
    ChannelKind::kGilbertElliott};

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.nodes = 24;
  cfg.heads = 6;
  cfg.k = 4;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  return cfg;
}

SimulationSpec build_spec(Scenario s, ChannelKind c, std::uint64_t seed) {
  SimulationSpec spec = scenario_factory(s, small_config())(seed);
  switch (c) {
    case ChannelKind::kPerfect:
      break;
    case ChannelKind::kLossy:
      spec.channel =
          std::make_unique<LossyChannel>(0.2, seed ^ 0xc0ffee0ddccull);
      break;
    case ChannelKind::kCollision:
      spec.channel = std::make_unique<CollisionChannel>(3);
      break;
    case ChannelKind::kGilbertElliott:
      spec.channel = std::make_unique<GilbertElliottChannel>(
          GilbertElliottParams{}, seed ^ 0xbadc0deull);
      break;
  }
  return spec;
}

SimMetrics run_uninterrupted(SimulationSpec spec) {
  Engine eng(std::move(spec));
  return eng.run();
}

std::string temp_snapshot_path(const char* tag) {
  return ::testing::TempDir() + "hinet_test_" + tag + ".snap";
}

/// Runs `steps` rounds, snapshots, round-trips the snapshot through a
/// file, restores into a freshly built identical spec and finishes.
SimMetrics run_resumed(Scenario s, ChannelKind c, std::uint64_t seed,
                       std::size_t steps, const char* tag) {
  SimulationSpec spec = build_spec(s, c, seed);
  const EngineConfig cfg = spec.engine;
  Engine first(std::move(spec));
  first.start(cfg);
  for (std::size_t i = 0; i < steps; ++i) {
    if (!first.step()) break;
  }
  const SimSnapshot snap = first.snapshot();
  // `first` is abandoned mid-run — exactly the crash the snapshot covers.

  const std::string path = temp_snapshot_path(tag);
  save_snapshot_file(snap, path);
  const SimSnapshot loaded = load_snapshot_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.payload, snap.payload);

  Engine second(build_spec(s, c, seed));
  second.restore(loaded);
  while (second.step()) {
  }
  return second.finish();
}

TEST(EngineSnapshot, MidRunResumeMatchesUninterruptedAcrossScenariosAndChannels) {
  const std::uint64_t seed = 11;
  for (const Scenario s : kAllScenarios) {
    for (const ChannelKind c : kAllChannels) {
      SCOPED_TRACE(std::string(scenario_name(s)) + " / " + channel_name(c));
      const SimMetrics golden = run_uninterrupted(build_spec(s, c, seed));
      ASSERT_GE(golden.rounds_executed, 2u);
      const SimMetrics resumed =
          run_resumed(s, c, seed, golden.rounds_executed / 2, "matrix");
      EXPECT_EQ(resumed, golden);
    }
  }
}

TEST(EngineSnapshot, EveryRoundBoundaryIsAValidResumePoint) {
  // The cheapest scenario with the most channel state: Algorithm 2 on a
  // (1, L) trace under Gilbert–Elliott bursts.  Snapshot at every round
  // boundary from 0 (before any step) to the final round.
  const Scenario s = Scenario::kHiNetOne;
  const ChannelKind c = ChannelKind::kGilbertElliott;
  const std::uint64_t seed = 3;
  const SimMetrics golden = run_uninterrupted(build_spec(s, c, seed));
  for (std::size_t r = 0; r <= golden.rounds_executed; ++r) {
    SCOPED_TRACE("resume at round " + std::to_string(r));
    EXPECT_EQ(run_resumed(s, c, seed, r, "boundary"), golden);
  }
}

TEST(EngineSnapshot, ResumeIsIndependentOfWhereTheFirstRunStopped) {
  // A snapshot taken at round r must not depend on how much further the
  // snapshotting run would have gone: taking it from a run stepped to
  // exactly r and from a run that merely paused there are the same thing.
  const std::uint64_t seed = 17;
  SimulationSpec spec = build_spec(Scenario::kHiNetInterval,
                                   ChannelKind::kLossy, seed);
  const EngineConfig cfg = spec.engine;
  Engine eng(std::move(spec));
  eng.start(cfg);
  std::vector<SimSnapshot> at_round;
  at_round.push_back(eng.snapshot());
  while (eng.step()) at_round.push_back(eng.snapshot());
  const SimMetrics golden = eng.finish();

  for (const std::size_t r : {std::size_t{0}, at_round.size() / 2}) {
    SCOPED_TRACE("snapshot index " + std::to_string(r));
    Engine resumed(
        build_spec(Scenario::kHiNetInterval, ChannelKind::kLossy, seed));
    resumed.restore(at_round[r]);
    while (resumed.step()) {
    }
    EXPECT_EQ(resumed.finish(), golden);
  }
}

TEST(EngineSnapshot, SnapshotBeforeStartIsRejected) {
  Engine eng(build_spec(Scenario::kKloOne, ChannelKind::kPerfect, 1));
  EXPECT_THROW(eng.snapshot(), PreconditionError);
}

TEST(EngineSnapshot, SnapshotAfterFinishIsRejected) {
  Engine eng(build_spec(Scenario::kKloOne, ChannelKind::kPerfect, 1));
  eng.run();
  EXPECT_THROW(eng.snapshot(), PreconditionError);
}

TEST(EngineSnapshot, RestoreOnAStartedEngineIsRejected) {
  SimulationSpec spec = build_spec(Scenario::kKloOne, ChannelKind::kPerfect, 1);
  const EngineConfig cfg = spec.engine;
  Engine donor(std::move(spec));
  donor.start(cfg);
  const SimSnapshot snap = donor.snapshot();

  SimulationSpec spec2 =
      build_spec(Scenario::kKloOne, ChannelKind::kPerfect, 1);
  const EngineConfig cfg2 = spec2.engine;
  Engine started(std::move(spec2));
  started.start(cfg2);
  EXPECT_THROW(started.restore(snap), PreconditionError);
}

TEST(EngineSnapshot, RestoreIntoDifferentlySizedSpecIsRejected) {
  SimulationSpec spec = build_spec(Scenario::kKloOne, ChannelKind::kPerfect, 1);
  const EngineConfig cfg = spec.engine;
  Engine donor(std::move(spec));
  donor.start(cfg);
  const SimSnapshot snap = donor.snapshot();

  ScenarioConfig bigger = small_config();
  bigger.nodes = 30;
  Engine other(scenario_factory(Scenario::kKloOne, bigger)(1));
  EXPECT_THROW(other.restore(snap), IoError);
}

TEST(EngineSnapshot, ChannelPresenceMustMatchTheSnapshot) {
  SimulationSpec with_channel =
      build_spec(Scenario::kKloOne, ChannelKind::kGilbertElliott, 1);
  const EngineConfig cfg = with_channel.engine;
  Engine donor(std::move(with_channel));
  donor.start(cfg);
  const SimSnapshot snap = donor.snapshot();

  Engine channelless(
      build_spec(Scenario::kKloOne, ChannelKind::kPerfect, 1));
  EXPECT_THROW(channelless.restore(snap), IoError);
}

TEST(EngineSnapshot, ProcessesWithoutCheckpointHooksFailLoudly) {
  const std::size_t n = 6;
  const std::size_t k = 3;
  std::vector<TokenSet> initial(n, TokenSet(k));
  for (std::size_t v = 0; v < n; ++v) initial[v].insert(static_cast<TokenId>(v % k));
  FloodingParams params;
  params.k = k;
  params.rounds = 4;

  SimulationSpec spec;
  spec.network = std::make_unique<StaticNetwork>(gen::complete(n));
  spec.processes = make_flooding_processes(initial, params);
  spec.engine.max_rounds = 4;
  const EngineConfig cfg = spec.engine;
  Engine eng(std::move(spec));
  eng.start(cfg);
  EXPECT_THROW(eng.snapshot(), PreconditionError);
}

}  // namespace
}  // namespace hinet
