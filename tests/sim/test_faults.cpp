// FaultPlan / FaultyNetwork semantics, the Gilbert–Elliott burst channel,
// and the cross-channel determinism regression (same seed => byte-identical
// SimMetrics under an active fault plan).
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include "baseline/klo.hpp"
#include "graph/generators.hpp"
#include "sim/channel.hpp"
#include "sim/spec.hpp"

namespace hinet {
namespace {

TEST(FaultPlan, EmptyPlanIsNeverActive) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.active_at(0));
  EXPECT_FALSE(plan.node_down(0, 0));
}

TEST(FaultPlan, ActiveAtCoversAllEventKinds) {
  FaultPlan plan;
  plan.crashes.push_back({1, 2, 4});
  plan.partitions.push_back({10, 12, {0, 1}});
  plan.bursts.push_back({20, 3, {{0, 1}}});
  EXPECT_FALSE(plan.active_at(1));
  EXPECT_TRUE(plan.active_at(2));
  EXPECT_TRUE(plan.active_at(3));
  EXPECT_FALSE(plan.active_at(4));  // recovered
  EXPECT_TRUE(plan.active_at(11));
  EXPECT_FALSE(plan.active_at(12));  // healed
  EXPECT_TRUE(plan.active_at(22));
  EXPECT_FALSE(plan.active_at(23));  // burst over
  EXPECT_TRUE(plan.node_down(1, 3));
  EXPECT_FALSE(plan.node_down(1, 4));
}

TEST(FaultPlan, ValidateRejectsOutOfRangeEvents) {
  {
    FaultPlan plan;
    plan.crashes.push_back({9, 0});
    EXPECT_THROW(plan.validate(5), PreconditionError);
  }
  {
    FaultPlan plan;
    plan.partitions.push_back({0, kNoRecovery, {2, 7}});
    EXPECT_THROW(plan.validate(5), PreconditionError);
  }
  {
    FaultPlan plan;
    plan.bursts.push_back({0, 1, {{1, 6}}});
    EXPECT_THROW(plan.validate(5), PreconditionError);
  }
}

TEST(FaultyNetwork, EmptyPlanForwardsByReference) {
  StaticNetwork base(gen::complete(4));
  FaultyNetwork faulty(base, FaultPlan{});
  for (Round r = 0; r < 3; ++r) {
    EXPECT_EQ(&faulty.graph_at(r), &base.graph_at(r)) << "round " << r;
  }
}

TEST(FaultyNetwork, QuietRoundsForwardEvenWithNonEmptyPlan) {
  StaticNetwork base(gen::complete(4));
  FaultPlan plan;
  plan.crashes.push_back({1, 5, 7});
  FaultyNetwork faulty(base, plan);
  EXPECT_EQ(&faulty.graph_at(4), &base.graph_at(4));  // pre-fault: forwarded
  EXPECT_NE(&faulty.graph_at(5), &base.graph_at(5));  // edited copy
  EXPECT_EQ(&faulty.graph_at(7), &base.graph_at(7));  // recovered: forwarded
}

TEST(FaultyNetwork, CrashWindowRemovesAndRestoresEdges) {
  StaticNetwork base(gen::complete(4));
  FaultPlan plan;
  plan.crashes.push_back({2, 1, 3});
  FaultyNetwork faulty(base, plan);
  EXPECT_EQ(faulty.graph_at(0).degree(2), 3u);
  EXPECT_EQ(faulty.graph_at(1).degree(2), 0u);
  EXPECT_TRUE(faulty.graph_at(1).has_edge(0, 1));  // others untouched
  EXPECT_EQ(faulty.graph_at(2).degree(2), 0u);
  EXPECT_EQ(faulty.graph_at(3).degree(2), 3u);
}

TEST(FaultyNetwork, PartitionCutsExactlyCrossEdges) {
  StaticNetwork base(gen::complete(5));
  FaultPlan plan;
  plan.partitions.push_back({2, 4, {0, 1}});
  FaultyNetwork faulty(base, plan);
  const Graph& g = faulty.graph_at(2);
  EXPECT_TRUE(g.has_edge(0, 1));  // inside the group
  EXPECT_TRUE(g.has_edge(2, 3));  // inside the complement
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 4));
  // Healed: everything back.
  EXPECT_EQ(faulty.graph_at(4).edge_count(), 10u);
}

TEST(FaultyNetwork, LinkBurstRemovesListedLinksForWindow) {
  StaticNetwork base(gen::ring(5));
  FaultPlan plan;
  plan.bursts.push_back({1, 2, {{0, 1}, {2, 3}}});
  FaultyNetwork faulty(base, plan);
  EXPECT_TRUE(faulty.graph_at(0).has_edge(0, 1));
  for (Round r = 1; r < 3; ++r) {
    EXPECT_FALSE(faulty.graph_at(r).has_edge(0, 1)) << "round " << r;
    EXPECT_FALSE(faulty.graph_at(r).has_edge(2, 3)) << "round " << r;
    EXPECT_TRUE(faulty.graph_at(r).has_edge(1, 2)) << "round " << r;
  }
  EXPECT_TRUE(faulty.graph_at(3).has_edge(0, 1));
}

TEST(FaultyNetwork, DecoratorsCompose) {
  // Crash plan stacked on a burst plan: round 2 sees both edits.
  StaticNetwork base(gen::complete(4));
  FaultPlan bursts;
  bursts.bursts.push_back({2, 1, {{0, 1}}});
  FaultPlan crashes;
  crashes.crashes.push_back({3, 2, 3});
  FaultyNetwork inner(base, bursts);
  FaultyNetwork outer(inner, crashes);
  const Graph& g = outer.graph_at(2);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_EQ(outer.graph_at(3).edge_count(), 6u);  // all faults over
}

TEST(FaultyNetwork, MaterializeFreezesRealizedTrace) {
  StaticNetwork base(gen::complete(3));
  FaultPlan plan;
  plan.crashes.push_back({0, 1, 2});
  FaultyNetwork faulty(base, plan);
  GraphSequence frozen = materialize(faulty, 3);
  EXPECT_EQ(frozen.round_count(), 3u);
  EXPECT_EQ(frozen.graph_at(0).degree(0), 2u);
  EXPECT_EQ(frozen.graph_at(1).degree(0), 0u);
  EXPECT_EQ(frozen.graph_at(2).degree(0), 2u);
}

TEST(RandomChurnPlan, DeterministicDistinctVictimsWithDowntime) {
  const FaultPlan a = random_churn_plan(20, 5, 50, 8, 42);
  const FaultPlan b = random_churn_plan(20, 5, 50, 8, 42);
  ASSERT_EQ(a.crashes.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.crashes[i].node, b.crashes[i].node);
    EXPECT_EQ(a.crashes[i].round, b.crashes[i].round);
    EXPECT_EQ(a.crashes[i].recovery, a.crashes[i].round + 8);
    EXPECT_LT(a.crashes[i].round, 50u);
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_NE(a.crashes[i].node, a.crashes[j].node);
    }
  }
  const FaultPlan c = random_churn_plan(20, 5, 50, 8, 43);
  bool differs = false;
  for (std::size_t i = 0; i < 5; ++i) {
    differs |= a.crashes[i].node != c.crashes[i].node ||
               a.crashes[i].round != c.crashes[i].round;
  }
  EXPECT_TRUE(differs) << "different seeds should give different plans";
}

TEST(GilbertElliott, AllGoodNeverLoses) {
  GilbertElliottParams p;
  p.p_good_to_bad = 0.0;  // chains never leave Good
  GilbertElliottChannel ch(p, 7);
  const Graph g = gen::complete(4);
  Packet pkt;
  pkt.src = 0;
  for (Round r = 0; r < 20; ++r) {
    ch.begin_round(r, g, {});
    for (NodeId v = 1; v < 4; ++v) {
      EXPECT_TRUE(ch.deliver(r, pkt, v));
      EXPECT_FALSE(ch.in_bad_state(v));
    }
  }
}

TEST(GilbertElliott, StuckBadLosesEverything) {
  GilbertElliottParams p;
  p.p_good_to_bad = 1.0;  // everyone enters Bad on round 0...
  p.p_bad_to_good = 0.0;  // ...and never leaves
  GilbertElliottChannel ch(p, 7);
  const Graph g = gen::complete(3);
  Packet pkt;
  pkt.src = 0;
  for (Round r = 0; r < 10; ++r) {
    ch.begin_round(r, g, {});
    for (NodeId v = 1; v < 3; ++v) {
      EXPECT_FALSE(ch.deliver(r, pkt, v));
      EXPECT_TRUE(ch.in_bad_state(v));
    }
  }
}

TEST(GilbertElliott, StateStreamIndependentOfTraffic) {
  // Two channels with the same seed, one asked to deliver along the way:
  // the Bad/Good state sequences must still agree round by round, because
  // state draws and loss draws come from separate streams.
  GilbertElliottParams p;
  p.p_good_to_bad = 0.3;
  p.p_bad_to_good = 0.3;
  GilbertElliottChannel quiet(p, 99);
  GilbertElliottChannel busy(p, 99);
  const Graph g = gen::complete(6);
  Packet pkt;
  pkt.src = 0;
  for (Round r = 0; r < 30; ++r) {
    quiet.begin_round(r, g, {});
    busy.begin_round(r, g, {});
    for (NodeId v = 1; v < 6; ++v) busy.deliver(r, pkt, v);
    for (NodeId v = 0; v < 6; ++v) {
      EXPECT_EQ(quiet.in_bad_state(v), busy.in_bad_state(v))
          << "round " << r << " node " << v;
    }
  }
}

TEST(GilbertElliott, RejectsNonProbabilities) {
  GilbertElliottParams p;
  p.loss_bad = 1.5;
  EXPECT_THROW(GilbertElliottChannel(p, 1), PreconditionError);
  GilbertElliottParams q;
  q.p_good_to_bad = -0.1;
  EXPECT_THROW(GilbertElliottChannel(q, 1), PreconditionError);
}

// --- Determinism regression: same seed => byte-identical SimMetrics -----

FaultPlan active_plan() {
  FaultPlan plan;
  plan.crashes.push_back({3, 5, 12});
  plan.partitions.push_back({8, 14, {0, 1, 2, 3}});
  plan.bursts.push_back({16, 4, {{4, 5}, {10, 11}}});
  return plan;
}

enum class Ch { kLossy, kCollision, kGilbertElliott };

SimMetrics run_faulty(Ch which, std::uint64_t seed) {
  constexpr std::size_t n = 16;
  constexpr std::size_t k = 4;
  std::vector<TokenSet> init(n, TokenSet(k));
  for (TokenId t = 0; t < k; ++t) init[t * 4].insert(t);
  KloFloodParams p;
  p.k = k;
  p.rounds = 40;

  SimulationSpec spec;
  spec.network = std::make_unique<FaultyNetwork>(
      std::make_unique<StaticNetwork>(gen::ring(n)), active_plan());
  spec.processes = make_klo_flood_processes(init, p);
  switch (which) {
    case Ch::kLossy:
      spec.channel = std::make_unique<LossyChannel>(0.3, seed);
      break;
    case Ch::kCollision:
      spec.channel = std::make_unique<CollisionChannel>(2);
      break;
    case Ch::kGilbertElliott:
      spec.channel =
          std::make_unique<GilbertElliottChannel>(GilbertElliottParams{}, seed);
      break;
  }
  spec.engine.max_rounds = 40;
  spec.engine.stop_when_complete = false;
  return run_simulation(std::move(spec));
}

TEST(Determinism, SameSeedSameMetricsUnderFaults) {
  for (Ch ch : {Ch::kLossy, Ch::kCollision, Ch::kGilbertElliott}) {
    const SimMetrics a = run_faulty(ch, 1234);
    const SimMetrics b = run_faulty(ch, 1234);
    EXPECT_TRUE(a == b) << "channel " << static_cast<int>(ch)
                        << " not seed-deterministic: " << a.to_string()
                        << " vs " << b.to_string();
  }
}

TEST(Determinism, SeedActuallyMatters) {
  const SimMetrics a = run_faulty(Ch::kLossy, 1);
  const SimMetrics b = run_faulty(Ch::kLossy, 2);
  EXPECT_FALSE(a == b) << "different seeds should perturb a lossy run";
}

}  // namespace
}  // namespace hinet
