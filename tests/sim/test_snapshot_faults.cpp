// Checkpoint/resume under active fault injection (the hostile variant of
// tests/sim/test_snapshot.cpp's matrix): a scenario wrapped in a
// FaultyNetwork running random crash/recovery churn, with Gilbert–Elliott
// burst loss on top, snapshotted mid-run — including inside crash windows
// — and resumed into a freshly built identical spec.  The resumed metrics
// must equal the uninterrupted golden run exactly: fault edits are a pure
// function of (plan, round) and the channel's chain/loss streams travel in
// the snapshot, so crash-safety must not cost a single bit of determinism
// even while the topology is being actively damaged.
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "analysis/scenarios.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/snapshot.hpp"

namespace hinet {
namespace {

ScenarioConfig faulty_config() {
  ScenarioConfig cfg;
  cfg.nodes = 24;
  cfg.heads = 6;
  cfg.k = 4;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  return cfg;
}

/// Scenario spec with churn faults layered on the trace and burst loss on
/// the medium.  Pure function of (scenario, seed): two calls build
/// byte-identical runs, which is exactly what resume relies on.
SimulationSpec build_faulty_spec(Scenario s, std::uint64_t seed) {
  const ScenarioConfig cfg = faulty_config();
  SimulationSpec spec = scenario_factory(s, cfg)(seed);
  const std::size_t horizon = spec.engine.max_rounds;
  FaultPlan plan = random_churn_plan(cfg.nodes, /*crash_count=*/4, horizon,
                                     /*downtime=*/3, seed ^ 0xfa71edull);
  spec.network =
      std::make_unique<FaultyNetwork>(std::move(spec.network), std::move(plan));
  spec.channel = std::make_unique<GilbertElliottChannel>(
      GilbertElliottParams{}, seed ^ 0xbad'cafeull);
  return spec;
}

SimMetrics resume_at(Scenario s, std::uint64_t seed, std::size_t steps) {
  SimulationSpec spec = build_faulty_spec(s, seed);
  const EngineConfig cfg = spec.engine;
  Engine first(std::move(spec));
  first.start(cfg);
  for (std::size_t i = 0; i < steps; ++i) {
    if (!first.step()) break;
  }
  const SimSnapshot snap = first.snapshot();

  Engine second(build_faulty_spec(s, seed));
  second.restore(snap);
  while (second.step()) {
  }
  return second.finish();
}

class SnapshotUnderFaults : public ::testing::TestWithParam<Scenario> {};

TEST_P(SnapshotUnderFaults, MidRunResumeMatchesUninterruptedGolden) {
  const Scenario s = GetParam();
  const std::uint64_t seed = 29;

  Engine golden_engine(build_faulty_spec(s, seed));
  const SimMetrics golden = golden_engine.run();
  ASSERT_GE(golden.rounds_executed, 4u);

  // Early, middle and late boundaries; churn windows from the plan overlap
  // at least one of these for any non-degenerate horizon.
  const std::size_t splits[] = {1, golden.rounds_executed / 2,
                                golden.rounds_executed - 1};
  for (const std::size_t r : splits) {
    SCOPED_TRACE("resume at round " + std::to_string(r));
    EXPECT_EQ(resume_at(s, seed, r), golden);
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, SnapshotUnderFaults,
                         ::testing::Values(Scenario::kHiNetInterval,
                                           Scenario::kHiNetOne,
                                           Scenario::kKloInterval),
                         [](const auto& p) {
                           switch (p.param) {
                             case Scenario::kHiNetInterval:
                               return std::string("HiNetInterval");
                             case Scenario::kHiNetOne:
                               return std::string("HiNetOne");
                             default:
                               return std::string("KloInterval");
                           }
                         });

TEST(SnapshotUnderFaultsDetail, SnapshotInsideACrashWindowResumesExactly) {
  // Pin the interesting instant explicitly: a plan whose crash window is
  // known, and a snapshot taken strictly inside it.
  const std::uint64_t seed = 7;
  const ScenarioConfig cfg = faulty_config();
  const auto build = [&] {
    SimulationSpec spec =
        scenario_factory(Scenario::kHiNetOne, cfg)(seed);
    FaultPlan plan;
    plan.crashes.push_back({/*node=*/2, /*start=*/2, /*recovery=*/8});
    plan.crashes.push_back({/*node=*/5, /*start=*/4, /*recovery=*/kNoRecovery});
    spec.network = std::make_unique<FaultyNetwork>(std::move(spec.network),
                                                   std::move(plan));
    spec.channel = std::make_unique<GilbertElliottChannel>(
        GilbertElliottParams{}, seed);
    return spec;
  };

  Engine golden_engine(build());
  const SimMetrics golden = golden_engine.run();
  ASSERT_GT(golden.rounds_executed, 5u);

  SimulationSpec spec = build();
  const EngineConfig ecfg = spec.engine;
  Engine first(std::move(spec));
  first.start(ecfg);
  for (int i = 0; i < 5; ++i) first.step();  // round 5: node 2 down, 5 down
  const SimSnapshot snap = first.snapshot();

  Engine second(build());
  second.restore(snap);
  while (second.step()) {
  }
  EXPECT_EQ(second.finish(), golden);
}

}  // namespace
}  // namespace hinet
