// BatchEngine: lockstep execution must be observably identical to running
// each replicate on its own serial Engine.
//
// The load-bearing matrix: every evaluation scenario × every channel model
// × two base seeds, three replicates per batch — each slot's SimMetrics
// must equal the serial run's via the exhaustive defaulted operator==.
// The rest pins the contract surface: failure isolation (one throwing
// replicate never contaminates the others), the classified exception_ptr
// on failures, the batch-wide deadline, channel homogeneity, and the
// single-shot / empty-batch preconditions.
#include "sim/batch_engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analysis/scenarios.hpp"
#include "sim/channel.hpp"

namespace hinet {
namespace {

enum class ChannelKind { kPerfect, kLossy, kCollision, kGilbertElliott };

const char* channel_name(ChannelKind c) {
  switch (c) {
    case ChannelKind::kPerfect:
      return "perfect";
    case ChannelKind::kLossy:
      return "lossy";
    case ChannelKind::kCollision:
      return "collision";
    case ChannelKind::kGilbertElliott:
      return "gilbert-elliott";
  }
  return "?";
}

constexpr Scenario kAllScenarios[] = {
    Scenario::kKloInterval, Scenario::kHiNetInterval,
    Scenario::kHiNetIntervalStable, Scenario::kKloOne, Scenario::kHiNetOne};

constexpr ChannelKind kAllChannels[] = {
    ChannelKind::kPerfect, ChannelKind::kLossy, ChannelKind::kCollision,
    ChannelKind::kGilbertElliott};

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.nodes = 24;
  cfg.heads = 6;
  cfg.k = 4;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  return cfg;
}

SimulationSpec build_spec(Scenario s, ChannelKind c, std::uint64_t seed) {
  SimulationSpec spec = scenario_factory(s, small_config())(seed);
  switch (c) {
    case ChannelKind::kPerfect:
      break;
    case ChannelKind::kLossy:
      spec.channel =
          std::make_unique<LossyChannel>(0.2, seed ^ 0xc0ffee0ddccull);
      break;
    case ChannelKind::kCollision:
      spec.channel = std::make_unique<CollisionChannel>(3);
      break;
    case ChannelKind::kGilbertElliott:
      spec.channel = std::make_unique<GilbertElliottChannel>(
          GilbertElliottParams{}, seed ^ 0xbadc0deull);
      break;
  }
  return spec;
}

TEST(BatchEngine, LockstepEqualsSerialAcrossScenariosChannelsSeeds) {
  constexpr std::size_t kReplicates = 3;
  for (const Scenario s : kAllScenarios) {
    for (const ChannelKind c : kAllChannels) {
      for (const std::uint64_t base_seed : {std::uint64_t{7},
                                            std::uint64_t{4242}}) {
        SCOPED_TRACE(std::string(scenario_name(s)) + " / " + channel_name(c) +
                     " / seed " + std::to_string(base_seed));

        std::vector<SimulationSpec> specs;
        for (std::size_t i = 0; i < kReplicates; ++i) {
          specs.push_back(build_spec(s, c, base_seed + i));
        }
        BatchEngine engine(std::move(specs));
        const BatchOutcome outcome = engine.run();
        ASSERT_EQ(outcome.slots.size(), kReplicates);
        EXPECT_TRUE(outcome.failures.empty());

        for (std::size_t i = 0; i < kReplicates; ++i) {
          ASSERT_TRUE(outcome.slots[i].has_value()) << "replicate " << i;
          const SimMetrics serial =
              run_simulation(build_spec(s, c, base_seed + i));
          EXPECT_TRUE(*outcome.slots[i] == serial) << "replicate " << i;
        }
      }
    }
  }
}

// A process that detonates at a chosen round — in transmit, the phase the
// lockstep engine runs replicate-major first.
class BombProcess : public Process {
 public:
  BombProcess(TokenSet knowledge, Round detonate_at)
      : knowledge_(std::move(knowledge)), detonate_at_(detonate_at) {}

  std::optional<Packet> transmit(const RoundContext& ctx) override {
    if (ctx.round >= detonate_at_) {
      throw InvariantError("bomb process detonated");
    }
    return std::nullopt;
  }
  void receive(const RoundContext&, InboxView) override {}
  const TokenSet& knowledge() const override { return knowledge_; }

 private:
  TokenSet knowledge_;
  Round detonate_at_;
};

SimulationSpec bombed_spec(Scenario s, std::uint64_t seed, Round detonate_at) {
  SimulationSpec spec = build_spec(s, ChannelKind::kPerfect, seed);
  const std::size_t universe = spec.processes.front()->knowledge().universe();
  spec.processes[0] =
      std::make_unique<BombProcess>(TokenSet(universe), detonate_at);
  return spec;
}

TEST(BatchEngine, OneFailingReplicateDoesNotContaminateTheOthers) {
  const std::uint64_t base_seed = 11;
  std::vector<SimulationSpec> specs;
  specs.push_back(build_spec(Scenario::kHiNetOne, ChannelKind::kPerfect,
                             base_seed));
  specs.push_back(bombed_spec(Scenario::kHiNetOne, base_seed + 1,
                              /*detonate_at=*/2));
  specs.push_back(build_spec(Scenario::kHiNetOne, ChannelKind::kPerfect,
                             base_seed + 2));

  BatchEngine engine(std::move(specs));
  const BatchOutcome outcome = engine.run();
  EXPECT_EQ(outcome.completed(), 2u);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].index, 1u);
  EXPECT_NE(outcome.failures[0].message.find("bomb process"),
            std::string::npos);
  // The carried exception_ptr rethrows as the original type, so supervised
  // callers can classify it.
  EXPECT_THROW(std::rethrow_exception(outcome.failures[0].error),
               InvariantError);
  EXPECT_FALSE(outcome.slots[1].has_value());

  // The survivors must still be byte-identical to their serial runs.
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    const SimMetrics serial = run_simulation(
        build_spec(Scenario::kHiNetOne, ChannelKind::kPerfect, base_seed + i));
    EXPECT_TRUE(*outcome.slots[i] == serial) << "replicate " << i;
  }
}

TEST(BatchEngine, BatchDeadlineFailsUnfinishedReplicatesWithDeadlineError) {
  // An unreachable deadline (1 ms, checked at lockstep-round granularity)
  // is hard to hit deterministically with real workloads, so use bombs
  // that never detonate but also never complete: stop_when_complete off
  // and a huge round budget would spin for a long time — instead pin the
  // semantics with an already-expired budget: deadline_ms = 1 and a
  // workload of hundreds of lockstep rounds must abort early and classify
  // every unfinished replicate as DeadlineError.
  std::vector<SimulationSpec> specs;
  for (std::size_t i = 0; i < 2; ++i) {
    SimulationSpec spec =
        build_spec(Scenario::kHiNetInterval, ChannelKind::kLossy, 31 + i);
    spec.engine.deadline_ms = 1;
    // Never complete early: run the full schedule.
    spec.engine.stop_when_complete = false;
    spec.engine.max_rounds = 200000;
    specs.push_back(std::move(spec));
  }
  BatchEngine engine(std::move(specs));
  const BatchOutcome outcome = engine.run();
  // Either the whole batch beat the clock (conceivable only on absurdly
  // fast hardware) or every unfinished replicate reports DeadlineError.
  for (const BatchReplicateFailure& f : outcome.failures) {
    EXPECT_THROW(std::rethrow_exception(f.error), DeadlineError);
    EXPECT_NE(f.message.find("lockstep batch shares one wall budget"),
              std::string::npos);
  }
  EXPECT_EQ(outcome.completed() + outcome.failures.size(), 2u);
}

TEST(BatchEngine, RejectsEmptyBatch) {
  EXPECT_THROW(BatchEngine(std::vector<SimulationSpec>{}), PreconditionError);
}

TEST(BatchEngine, RejectsChannelHeterogeneousBatch) {
  std::vector<SimulationSpec> specs;
  specs.push_back(build_spec(Scenario::kKloOne, ChannelKind::kLossy, 1));
  SimulationSpec no_channel =
      build_spec(Scenario::kKloOne, ChannelKind::kPerfect, 2);
  no_channel.channel = nullptr;
  specs.push_back(std::move(no_channel));
  EXPECT_THROW(BatchEngine(std::move(specs)), PreconditionError);
}

TEST(BatchEngine, RunIsSingleShot) {
  std::vector<SimulationSpec> specs;
  specs.push_back(build_spec(Scenario::kKloOne, ChannelKind::kPerfect, 5));
  BatchEngine engine(std::move(specs));
  engine.run();
  EXPECT_THROW(engine.run(), PreconditionError);
}

TEST(BatchEngine, ValidatesEverySpecUpFront) {
  SimulationSpec bad = build_spec(Scenario::kKloOne, ChannelKind::kPerfect, 3);
  bad.engine.max_rounds = 0;
  std::vector<SimulationSpec> specs;
  specs.push_back(std::move(bad));
  EXPECT_THROW(BatchEngine(std::move(specs)), PreconditionError);
}

}  // namespace
}  // namespace hinet
