// Golden-metrics regression test for the delivery path.
//
// Pins the full SimMetrics of every scenario family under every channel
// model on fixed seeds to values recorded from the pre-refactor
// (receiver-centric) engine.  The per-round series and per-node tx/rx
// vectors are folded into one FNV-1a hash, so ANY metric drift — a
// reordered inbox, a perturbed LossyChannel RNG stream, a missed or
// double-counted token — fails loudly here.
//
// Regenerate the table with tools/golden_capture.cpp ONLY for an
// intentional semantics change, and say so in the commit message.
#include <cstdint>

#include <gtest/gtest.h>

#include "analysis/scenarios.hpp"
#include "sim/engine.hpp"

namespace hinet {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xffULL;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Hash of everything SimMetrics records per node and per round, each
/// vector preceded by its length (mirrors tools/golden_capture.cpp).
std::uint64_t hash_series(const SimMetrics& m) {
  std::uint64_t h = 14695981039346656037ULL;
  h = fnv1a(h, m.tokens_sent_per_round.size());
  for (std::size_t x : m.tokens_sent_per_round) h = fnv1a(h, x);
  h = fnv1a(h, m.complete_nodes_per_round.size());
  for (std::size_t x : m.complete_nodes_per_round) h = fnv1a(h, x);
  h = fnv1a(h, m.per_node_tx_tokens.size());
  for (std::size_t x : m.per_node_tx_tokens) h = fnv1a(h, x);
  h = fnv1a(h, m.per_node_rx_tokens.size());
  for (std::size_t x : m.per_node_rx_tokens) h = fnv1a(h, x);
  return h;
}

ScenarioConfig golden_config() {
  ScenarioConfig cfg;
  cfg.nodes = 60;
  cfg.heads = 12;
  cfg.k = 8;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  return cfg;
}

struct GoldenCase {
  Scenario scenario;
  int channel;  ///< 0 = perfect, 1 = lossy(0.2), 2 = collision(3)
  std::uint64_t seed;
  std::size_t rounds_executed;
  std::size_t packets_sent;
  std::size_t tokens_sent;
  std::size_t rounds_to_completion;  ///< kNever when incomplete
  bool all_delivered;
  std::uint64_t series_hash;
};

// Captured by tools/golden_capture.cpp from the receiver-centric engine
// (commit d5daf3d), config nodes=60 heads=12 k=8 alpha=2 l=2, seeds {1,7}.
const GoldenCase kGolden[] = {
    {Scenario::kKloInterval, 0, 1ull, 180u, 7054u, 7054u, 24u, true,
     0x4b1097afb52143f2ull},
    {Scenario::kKloInterval, 0, 7ull, 180u, 7117u, 7117u, 22u, true,
     0xc38e79dd385362b1ull},
    {Scenario::kKloInterval, 1, 1ull, 180u, 6750u, 6750u, 51u, true,
     0xe408c0c9fb725a1dull},
    {Scenario::kKloInterval, 1, 7ull, 180u, 6879u, 6879u, 44u, true,
     0x195bacb70fc96f3cull},
    {Scenario::kKloInterval, 2, 1ull, 180u, 6058u, 6058u, kNever, false,
     0xc0fc1930ec5d45b4ull},
    {Scenario::kKloInterval, 2, 7ull, 180u, 6690u, 6690u, kNever, false,
     0x39b53bb74ecb1389ull},
    {Scenario::kHiNetInterval, 0, 1ull, 84u, 1244u, 1244u, 32u, true,
     0x4e81b9816beb548aull},
    {Scenario::kHiNetInterval, 0, 7ull, 84u, 1283u, 1283u, 22u, true,
     0xb7ddb130b6c689ddull},
    {Scenario::kHiNetInterval, 1, 1ull, 84u, 1062u, 1062u, 80u, true,
     0xdc6776f2f6ea07d1ull},
    {Scenario::kHiNetInterval, 1, 7ull, 84u, 1153u, 1153u, 56u, true,
     0xa89aab88f9aeeeeaull},
    {Scenario::kHiNetInterval, 2, 1ull, 84u, 1244u, 1244u, 33u, true,
     0x690a0322feac8b5eull},
    {Scenario::kHiNetInterval, 2, 7ull, 84u, 1283u, 1283u, 22u, true,
     0x4fdc42cc714b9b94ull},
    {Scenario::kHiNetIntervalStable, 0, 1ull, 84u, 1207u, 1207u, 33u, true,
     0x84d766309867dceaull},
    {Scenario::kHiNetIntervalStable, 0, 7ull, 84u, 1238u, 1238u, 22u, true,
     0xb8916fc5335552a2ull},
    {Scenario::kHiNetIntervalStable, 1, 1ull, 84u, 1024u, 1024u, 80u, true,
     0x46344b432b02b115ull},
    {Scenario::kHiNetIntervalStable, 1, 7ull, 84u, 1091u, 1091u, 65u, true,
     0xb133a9bfbc6310f2ull},
    {Scenario::kHiNetIntervalStable, 2, 1ull, 84u, 1207u, 1207u, 33u, true,
     0x84d766309867dceaull},
    {Scenario::kHiNetIntervalStable, 2, 7ull, 84u, 1238u, 1238u, 22u, true,
     0xb8916fc5335552a2ull},
    {Scenario::kKloOne, 0, 1ull, 59u, 3419u, 25900u, 9u, true,
     0x7851440eb478c7fcull},
    {Scenario::kKloOne, 0, 7ull, 59u, 3434u, 25911u, 10u, true,
     0x488047d220152a09ull},
    {Scenario::kKloOne, 1, 1ull, 59u, 3382u, 25308u, 13u, true,
     0x12dbef55836c2277ull},
    {Scenario::kKloOne, 1, 7ull, 59u, 3417u, 25524u, 12u, true,
     0xe9b73d246270aeeeull},
    {Scenario::kKloOne, 2, 1ull, 59u, 3419u, 22025u, kNever, false,
     0x2a1d41053deb0294ull},
    {Scenario::kKloOne, 2, 7ull, 59u, 3434u, 21650u, kNever, false,
     0x16c7fdb6e5ed00deull},
    {Scenario::kHiNetOne, 0, 1ull, 59u, 1435u, 10765u, 12u, true,
     0xd97d53be10edbbffull},
    {Scenario::kHiNetOne, 0, 7ull, 59u, 1443u, 10774u, 11u, true,
     0x933c24a556f1fa48ull},
    {Scenario::kHiNetOne, 1, 1ull, 59u, 1418u, 10054u, 31u, true,
     0x4f569cf2bc422d6full},
    {Scenario::kHiNetOne, 1, 7ull, 59u, 1441u, 10585u, 14u, true,
     0x040c7a91bf119a88ull},
    {Scenario::kHiNetOne, 2, 1ull, 59u, 1435u, 10765u, 12u, true,
     0x647535964d2dec28ull},
    {Scenario::kHiNetOne, 2, 7ull, 59u, 1443u, 10774u, 11u, true,
     0x2133e5cca4f45310ull},
};

class EngineGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(EngineGolden, MetricsMatchRecordedBaseline) {
  const GoldenCase& gc = GetParam();
  ScenarioRun run = make_scenario(gc.scenario, golden_config(), gc.seed);
  switch (gc.channel) {
    case 0:
      break;  // perfect (null channel)
    case 1:
      run.spec.channel =
          std::make_unique<LossyChannel>(0.2, gc.seed ^ 0x5eedULL);
      break;
    case 2:
      run.spec.channel = std::make_unique<CollisionChannel>(3);
      break;
  }
  const SimMetrics m = run_simulation(std::move(run.spec));
  EXPECT_EQ(m.rounds_executed, gc.rounds_executed);
  EXPECT_EQ(m.packets_sent, gc.packets_sent);
  EXPECT_EQ(m.tokens_sent, gc.tokens_sent);
  EXPECT_EQ(m.rounds_to_completion, gc.rounds_to_completion);
  EXPECT_EQ(m.all_delivered, gc.all_delivered);
  EXPECT_EQ(hash_series(m), gc.series_hash);
}

std::string golden_name(const ::testing::TestParamInfo<GoldenCase>& info) {
  const GoldenCase& gc = info.param;
  std::string name;
  switch (gc.scenario) {
    case Scenario::kKloInterval: name = "KloInterval"; break;
    case Scenario::kHiNetInterval: name = "HiNetInterval"; break;
    case Scenario::kHiNetIntervalStable: name = "HiNetIntervalStable"; break;
    case Scenario::kKloOne: name = "KloOne"; break;
    case Scenario::kHiNetOne: name = "HiNetOne"; break;
  }
  name += gc.channel == 0 ? "Perfect" : gc.channel == 1 ? "Lossy" : "Collision";
  name += "Seed" + std::to_string(gc.seed);
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllScenariosAllChannels, EngineGolden,
                         ::testing::ValuesIn(kGolden), golden_name);

}  // namespace
}  // namespace hinet
