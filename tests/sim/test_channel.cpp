// Channel models (failure injection) and energy accounting.
#include "sim/channel.hpp"

#include <gtest/gtest.h>

#include "analysis/assignment.hpp"
#include "baseline/klo.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

namespace hinet {
namespace {

std::vector<ProcessPtr> flood_processes(std::size_t n, std::size_t k,
                                        std::size_t rounds) {
  std::vector<TokenSet> init(n, TokenSet(k));
  for (TokenId t = 0; t < k; ++t) init[0].insert(t);
  KloFloodParams p;
  p.k = k;
  p.rounds = rounds;
  return make_klo_flood_processes(init, p);
}

TEST(PerfectChannel, DeliversEverything) {
  StaticNetwork net(gen::path(4));
  PerfectChannel channel;
  Engine engine(net, nullptr, flood_processes(4, 2, 10));
  engine.set_channel(&channel);
  const SimMetrics m =
      engine.run({.max_rounds = 10, .stop_when_complete = true});
  EXPECT_TRUE(m.all_delivered);
  EXPECT_EQ(m.rounds_to_completion, 3u);
}

TEST(LossyChannel, ZeroLossMatchesPerfect) {
  StaticNetwork net(gen::path(4));
  LossyChannel channel(0.0, 1);
  Engine engine(net, nullptr, flood_processes(4, 2, 10));
  engine.set_channel(&channel);
  const SimMetrics m =
      engine.run({.max_rounds = 10, .stop_when_complete = true});
  EXPECT_EQ(m.rounds_to_completion, 3u);
}

TEST(LossyChannel, TotalLossBlocksEverything) {
  StaticNetwork net(gen::complete(4));
  LossyChannel channel(1.0, 1);
  Engine engine(net, nullptr, flood_processes(4, 2, 6));
  engine.set_channel(&channel);
  const SimMetrics m =
      engine.run({.max_rounds = 6, .stop_when_complete = true});
  EXPECT_FALSE(m.all_delivered);
  // Packets were transmitted (and paid for) but nothing was received.
  EXPECT_GT(m.packets_sent, 0u);
  for (std::size_t rx : m.per_node_rx_tokens) EXPECT_EQ(rx, 0u);
}

TEST(LossyChannel, PartialLossDelaysButFloodingRecovers) {
  StaticNetwork net(gen::path(6));
  LossyChannel lossy(0.4, 7);
  Engine e_lossy(net, nullptr, flood_processes(6, 2, 60));
  e_lossy.set_channel(&lossy);
  const SimMetrics m_lossy =
      e_lossy.run({.max_rounds = 60, .stop_when_complete = true});

  StaticNetwork net2(gen::path(6));
  Engine e_clean(net2, nullptr, flood_processes(6, 2, 60));
  const SimMetrics m_clean =
      e_clean.run({.max_rounds = 60, .stop_when_complete = true});

  ASSERT_TRUE(m_clean.all_delivered);
  ASSERT_TRUE(m_lossy.all_delivered);  // repetition heals iid loss
  EXPECT_GE(m_lossy.rounds_to_completion, m_clean.rounds_to_completion);
}

TEST(LossyChannel, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    StaticNetwork net(gen::ring(8));
    LossyChannel channel(0.3, seed);
    Engine engine(net, nullptr, flood_processes(8, 3, 40));
    engine.set_channel(&channel);
    return engine.run({.max_rounds = 40, .stop_when_complete = true});
  };
  const SimMetrics a = run(5);
  const SimMetrics b = run(5);
  EXPECT_EQ(a.rounds_to_completion, b.rounds_to_completion);
  EXPECT_EQ(a.tokens_sent, b.tokens_sent);
}

TEST(LossyChannel, RejectsBadLoss) {
  EXPECT_THROW(LossyChannel(-0.1, 1), PreconditionError);
  EXPECT_THROW(LossyChannel(1.1, 1), PreconditionError);
}

TEST(CollisionChannel, SingleTransmitterAlwaysHeard) {
  StaticNetwork net(gen::star(5));
  CollisionChannel channel(1);
  Engine engine(net, nullptr, flood_processes(5, 2, 4));
  engine.set_channel(&channel);
  const SimMetrics m =
      engine.run({.max_rounds = 4, .stop_when_complete = true});
  // Round 0: only the hub... wait, node 0 is the hub of gen::star.  Only
  // node 0 transmits, so no collisions anywhere; leaves hear it.  Round 1
  // onwards all 5 transmit: every leaf has 1 transmitting neighbour (the
  // hub), the hub has 4 > 1 and hears nothing more (it already has all).
  EXPECT_TRUE(m.all_delivered);
  EXPECT_EQ(m.rounds_to_completion, 1u);
}

TEST(CollisionChannel, CongestionSilencesReceivers) {
  // Complete graph: once >capture nodes transmit, nobody hears anything.
  StaticNetwork net(gen::complete(5));
  CollisionChannel channel(1);
  std::vector<TokenSet> init(5, TokenSet(5));
  for (NodeId v = 0; v < 5; ++v) init[v].insert(v);  // everyone transmits
  KloFloodParams p;
  p.k = 5;
  p.rounds = 10;
  Engine engine(net, nullptr, make_klo_flood_processes(init, p));
  engine.set_channel(&channel);
  const SimMetrics m =
      engine.run({.max_rounds = 10, .stop_when_complete = true});
  // Every node always has 4 transmitting neighbours > capture 1: deadlock.
  EXPECT_FALSE(m.all_delivered);
}

TEST(CollisionChannel, HighCaptureBehavesLikePerfect) {
  StaticNetwork net(gen::complete(5));
  CollisionChannel channel(16);
  std::vector<TokenSet> init(5, TokenSet(5));
  for (NodeId v = 0; v < 5; ++v) init[v].insert(v);
  KloFloodParams p;
  p.k = 5;
  p.rounds = 10;
  Engine engine(net, nullptr, make_klo_flood_processes(init, p));
  engine.set_channel(&channel);
  const SimMetrics m =
      engine.run({.max_rounds = 10, .stop_when_complete = true});
  EXPECT_TRUE(m.all_delivered);
  EXPECT_EQ(m.rounds_to_completion, 1u);
}

TEST(CollisionChannel, RejectsZeroCapture) {
  EXPECT_THROW(CollisionChannel(0), PreconditionError);
}

TEST(Energy, AccountsTxAndRxPerNode) {
  // Star, hub holds 2 tokens, one round: hub transmits 2 tokens, each of
  // the 3 leaves receives 2.
  StaticNetwork net(gen::star(4));
  Engine engine(net, nullptr, flood_processes(4, 2, 1));
  const SimMetrics m =
      engine.run({.max_rounds = 1, .stop_when_complete = false});
  ASSERT_EQ(m.per_node_tx_tokens.size(), 4u);
  EXPECT_EQ(m.per_node_tx_tokens[0], 2u);
  EXPECT_EQ(m.per_node_tx_tokens[1], 0u);
  EXPECT_EQ(m.per_node_rx_tokens[0], 0u);
  EXPECT_EQ(m.per_node_rx_tokens[1], 2u);
  EXPECT_EQ(m.per_node_rx_tokens[3], 2u);

  EnergyModel e;  // tx=1, rx=0.5, idle=0
  EXPECT_DOUBLE_EQ(total_energy(m, e), 2.0 + 3 * 2 * 0.5);
  EXPECT_DOUBLE_EQ(max_node_energy(m, e), 2.0);  // the hub
  EnergyModel idle{1.0, 0.5, 0.25};
  EXPECT_DOUBLE_EQ(total_energy(m, idle), 5.0 + 0.25 * 1 * 4);
}

TEST(Energy, EmptyRunIsZero) {
  SimMetrics m;
  EXPECT_DOUBLE_EQ(total_energy(m, EnergyModel{}), 0.0);
  EXPECT_DOUBLE_EQ(max_node_energy(m, EnergyModel{}), 0.0);
}

}  // namespace
}  // namespace hinet
