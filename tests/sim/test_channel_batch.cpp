// Channel batch-interface conformance.
//
// The contract under test (channel.hpp): for every channel type with
// supports_batching() == true, ONE begin_round_batch call over N entries
// must leave every entry's channel byte-for-byte identical to N
// independent begin_round calls — same subsequent deliver() decisions AND
// the same serialized state (save_state bytes compare equal after every
// round).  The template below drives both twins of each channel through
// an identical multi-round workload, including a save_state/restore_state
// round-trip mid-run on the batched twin, and compares after every round.
//
// A custom channel that keeps the default supports_batching() == false
// pins the conservative path: the batch engine must route such channels
// through per-replicate begin_round and still match serial execution.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/scenarios.hpp"
#include "sim/batch_engine.hpp"
#include "sim/channel.hpp"

namespace hinet {
namespace {

using ChannelFactory =
    std::function<std::unique_ptr<ChannelModel>(std::uint64_t seed)>;

constexpr std::size_t kNodes = 10;
constexpr std::size_t kReplicates = 4;
constexpr Round kRounds = 12;
constexpr std::uint64_t kBaseSeed = 100;

Graph ring_graph() {
  Graph g(kNodes);
  for (NodeId v = 0; v < kNodes; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % kNodes));
  }
  return g;
}

/// Per-(replicate, round) transmission list — deterministic and distinct
/// per replicate, so a batched channel that accidentally reads another
/// entry's packets diverges immediately.
std::vector<Packet> workload(std::size_t replicate, Round r) {
  std::vector<Packet> packets;
  for (NodeId v = 0; v < kNodes; ++v) {
    if ((v + replicate + static_cast<std::size_t>(r)) % 3 == 0) {
      Packet p;
      p.src = v;
      p.tokens = TokenSet(4, {static_cast<TokenId>(v % 4)});
      packets.push_back(std::move(p));
    }
  }
  return packets;
}

std::vector<std::uint8_t> state_bytes(const ChannelModel& c) {
  ByteWriter w;
  c.save_state(w);
  return w.take();
}

/// The conformance template: batched twin == serial twin, byte for byte,
/// after every round; with `restore_mid_run`, the batched twins are pushed
/// through a save/restore round-trip halfway.
void expect_batch_conformance(const ChannelFactory& make,
                              bool restore_mid_run) {
  const Graph g = ring_graph();

  std::vector<std::unique_ptr<ChannelModel>> serial, batched;
  for (std::size_t i = 0; i < kReplicates; ++i) {
    serial.push_back(make(kBaseSeed + i));
    batched.push_back(make(kBaseSeed + i));
  }
  ASSERT_TRUE(batched.front()->supports_batching());

  for (Round r = 0; r < kRounds; ++r) {
    SCOPED_TRACE("round " + std::to_string(r));
    if (restore_mid_run && r == kRounds / 2) {
      // A replicate resumed from a snapshot mid-sweep joins a fresh batch;
      // the restored channel must behave exactly like the original.
      for (std::size_t i = 0; i < kReplicates; ++i) {
        const std::vector<std::uint8_t> saved = state_bytes(*batched[i]);
        auto fresh = make(kBaseSeed + i);
        ByteReader reader(saved, "channel state");
        fresh->restore_state(reader);
        batched[i] = std::move(fresh);
      }
    }

    std::vector<std::vector<Packet>> packets;
    for (std::size_t i = 0; i < kReplicates; ++i) {
      packets.push_back(workload(i, r));
    }

    for (std::size_t i = 0; i < kReplicates; ++i) {
      serial[i]->begin_round(r, g, packets[i]);
    }
    std::vector<ChannelRoundInput> batch;
    for (std::size_t i = 0; i < kReplicates; ++i) {
      batch.push_back(ChannelRoundInput{batched[i].get(), &g, packets[i]});
    }
    batched.front()->begin_round_batch(r, batch);

    // Identical deliver sequences (receiver-major, the engine's order)
    // must make identical decisions — this also advances any loss RNG the
    // same way on both sides.
    for (std::size_t i = 0; i < kReplicates; ++i) {
      for (NodeId receiver = 0; receiver < kNodes; ++receiver) {
        for (const Packet& p : packets[i]) {
          if (p.src == receiver || !g.has_edge(p.src, receiver)) continue;
          EXPECT_EQ(serial[i]->deliver(r, p, receiver),
                    batched[i]->deliver(r, p, receiver))
              << "replicate " << i << " receiver " << receiver << " src "
              << p.src;
        }
      }
      EXPECT_EQ(state_bytes(*serial[i]), state_bytes(*batched[i]))
          << "replicate " << i << " state diverged";
    }
  }
}

struct ChannelCase {
  const char* name;
  ChannelFactory make;
};

std::vector<ChannelCase> all_channel_cases() {
  std::vector<ChannelCase> cases;
  cases.push_back({"perfect", [](std::uint64_t) {
                     return std::make_unique<PerfectChannel>();
                   }});
  cases.push_back({"lossy", [](std::uint64_t seed) {
                     return std::make_unique<LossyChannel>(0.3, seed);
                   }});
  cases.push_back({"collision", [](std::uint64_t) {
                     return std::make_unique<CollisionChannel>(1);
                   }});
  cases.push_back({"gilbert-elliott", [](std::uint64_t seed) {
                     return std::make_unique<GilbertElliottChannel>(
                         GilbertElliottParams{}, seed);
                   }});
  return cases;
}

TEST(ChannelBatchConformance, BatchedEqualsNIndependentSerialChannels) {
  for (const ChannelCase& c : all_channel_cases()) {
    SCOPED_TRACE(c.name);
    expect_batch_conformance(c.make, /*restore_mid_run=*/false);
  }
}

TEST(ChannelBatchConformance, SurvivesSaveRestoreMidBatch) {
  for (const ChannelCase& c : all_channel_cases()) {
    SCOPED_TRACE(c.name);
    expect_batch_conformance(c.make, /*restore_mid_run=*/true);
  }
}

// A channel that opts OUT of batching: LossyChannel semantics re-derived
// from its own RNG, with supports_batching() left at the base default.
class NonBatchingLossy final : public ChannelModel {
 public:
  NonBatchingLossy(double loss, std::uint64_t seed)
      : loss_(loss), rng_(seed) {}

  bool deliver(Round, const Packet&, NodeId) override {
    return !rng_.bernoulli(loss_);
  }

 private:
  double loss_;
  Rng rng_;
};

TEST(ChannelBatchConformance, DefaultSupportsBatchingIsFalse) {
  const NonBatchingLossy c(0.5, 1);
  EXPECT_FALSE(c.supports_batching());
}

TEST(ChannelBatchConformance, DefaultBatchHookLoopsBeginRoundPerEntry) {
  // The base-class begin_round_batch must visit entries in index order and
  // equal per-entry begin_round exactly; GE channels observing their own
  // chains see it.
  const Graph g = ring_graph();
  const std::vector<Packet> none;
  GilbertElliottChannel a(GilbertElliottParams{}, 7);
  GilbertElliottChannel b(GilbertElliottParams{}, 8);
  GilbertElliottChannel a2(GilbertElliottParams{}, 7);
  GilbertElliottChannel b2(GilbertElliottParams{}, 8);
  std::vector<ChannelRoundInput> batch{{&a, &g, none}, {&b, &g, none}};
  // Route through the BASE implementation explicitly (GE overrides it).
  a.ChannelModel::begin_round_batch(0, batch);
  a2.begin_round(0, g, none);
  b2.begin_round(0, g, none);
  EXPECT_EQ(state_bytes(a), state_bytes(a2));
  EXPECT_EQ(state_bytes(b), state_bytes(b2));
}

TEST(ChannelBatchConformance, BatchEngineFallsBackForNonBatchingChannels) {
  // End to end: a batch whose channels decline batching must take the
  // per-replicate begin_round path and still match serial runs exactly.
  ScenarioConfig cfg;
  cfg.nodes = 24;
  cfg.heads = 6;
  cfg.k = 4;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  const SpecFactory base = scenario_factory(Scenario::kHiNetInterval, cfg);
  const auto with_channel = [&base](std::uint64_t seed) {
    SimulationSpec spec = base(seed);
    spec.channel = std::make_unique<NonBatchingLossy>(0.2, seed ^ 0x5eedull);
    return spec;
  };

  std::vector<SimulationSpec> specs;
  for (std::uint64_t seed = 50; seed < 53; ++seed) {
    specs.push_back(with_channel(seed));
  }
  BatchEngine engine(std::move(specs));
  const BatchOutcome outcome = engine.run();
  ASSERT_TRUE(outcome.failures.empty());
  for (std::uint64_t seed = 50; seed < 53; ++seed) {
    const SimMetrics serial = run_simulation(with_channel(seed));
    EXPECT_TRUE(*outcome.slots[seed - 50] == serial) << "seed " << seed;
  }
}

}  // namespace
}  // namespace hinet
