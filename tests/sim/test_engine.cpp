// Engine semantics tests, using a tiny scripted process.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/trace.hpp"

namespace hinet {
namespace {

/// Broadcasts its whole set every round; unions everything heard.
class EchoProcess final : public Process {
 public:
  EchoProcess(NodeId self, TokenSet initial, std::size_t quiet_after = kNever)
      : self_(self), ta_(std::move(initial)), quiet_after_(quiet_after) {}

  std::optional<Packet> transmit(const RoundContext& ctx) override {
    ++transmissions_;
    if (ctx.round >= quiet_after_ || ta_.empty()) return std::nullopt;
    Packet pkt;
    pkt.src = self_;
    pkt.tokens = ta_;
    return pkt;
  }

  void receive(const RoundContext&, InboxView inbox) override {
    last_inbox_senders_.clear();
    for (PacketView pkt : inbox) {
      last_inbox_senders_.push_back(pkt->src);
      ta_.unite(pkt->tokens);
    }
  }

  const TokenSet& knowledge() const override { return ta_; }

  std::size_t transmissions() const { return transmissions_; }
  const std::vector<NodeId>& last_inbox_senders() const {
    return last_inbox_senders_;
  }

 private:
  NodeId self_;
  TokenSet ta_;
  std::size_t quiet_after_;
  std::size_t transmissions_ = 0;
  std::vector<NodeId> last_inbox_senders_;
};

std::vector<ProcessPtr> echo_processes(std::size_t n, std::size_t k,
                                       NodeId token_holder) {
  std::vector<ProcessPtr> ps;
  for (NodeId v = 0; v < n; ++v) {
    TokenSet init(k);
    if (v == token_holder) {
      for (TokenId t = 0; t < k; ++t) init.insert(t);
    }
    ps.push_back(std::make_unique<EchoProcess>(v, std::move(init)));
  }
  return ps;
}

TEST(Engine, FloodsAcrossAPathInDiameterRounds) {
  StaticNetwork net(gen::path(5));
  Engine engine(net, nullptr, echo_processes(5, 2, 0));
  const SimMetrics m = engine.run({.max_rounds = 10, .stop_when_complete = true});
  EXPECT_TRUE(m.all_delivered);
  EXPECT_EQ(m.rounds_to_completion, 4u);  // distance 0 -> 4
  EXPECT_EQ(m.rounds_executed, 4u);
}

TEST(Engine, StopWhenCompleteFalseRunsFullBudget) {
  StaticNetwork net(gen::path(3));
  Engine engine(net, nullptr, echo_processes(3, 1, 0));
  const SimMetrics m =
      engine.run({.max_rounds = 7, .stop_when_complete = false});
  EXPECT_TRUE(m.all_delivered);
  EXPECT_EQ(m.rounds_to_completion, 2u);
  EXPECT_EQ(m.rounds_executed, 7u);
}

TEST(Engine, CountsTokensPerTransmissionNotPerReceiver) {
  // A star: the hub's broadcast reaches 3 nodes but costs its own size
  // once.
  StaticNetwork net(gen::star(4));
  Engine engine(net, nullptr, echo_processes(4, 2, 0));
  const SimMetrics m = engine.run({.max_rounds = 1, .stop_when_complete = true});
  // Round 0: only the hub holds tokens; one packet of 2 tokens.
  EXPECT_EQ(m.packets_sent, 1u);
  EXPECT_EQ(m.tokens_sent, 2u);
}

TEST(Engine, DeliveryRespectsRoundGraph) {
  // Dynamic: round 0 only edge 0-1, round 1 only edge 1-2.
  std::vector<Graph> rounds;
  rounds.push_back(Graph(3, {{0, 1}}));
  rounds.push_back(Graph(3, {{1, 2}}));
  GraphSequence net(std::move(rounds));
  Engine engine(net, nullptr, echo_processes(3, 1, 0));
  const SimMetrics m = engine.run({.max_rounds = 5, .stop_when_complete = true});
  EXPECT_TRUE(m.all_delivered);
  EXPECT_EQ(m.rounds_to_completion, 2u);
}

TEST(Engine, NoSelfDelivery) {
  StaticNetwork net(gen::complete(2));
  std::vector<ProcessPtr> ps = echo_processes(2, 1, 0);
  auto* p0 = static_cast<EchoProcess*>(ps[0].get());
  Engine engine(net, nullptr, std::move(ps));
  engine.run({.max_rounds = 1, .stop_when_complete = false});
  // Node 0 transmitted but must not hear itself.
  EXPECT_TRUE(p0->last_inbox_senders().empty());
}

TEST(Engine, InboxOrderedBySenderId) {
  StaticNetwork net(gen::complete(4));
  std::vector<ProcessPtr> ps;
  for (NodeId v = 0; v < 4; ++v) {
    TokenSet init(4);
    init.insert(v);  // everyone holds one token -> everyone transmits
    ps.push_back(std::make_unique<EchoProcess>(v, std::move(init)));
  }
  auto* p3 = static_cast<EchoProcess*>(ps[3].get());
  Engine engine(net, nullptr, std::move(ps));
  engine.run({.max_rounds = 1, .stop_when_complete = false});
  EXPECT_EQ(p3->last_inbox_senders(), (std::vector<NodeId>{0, 1, 2}));
}

TEST(Engine, PerRoundSeriesRecorded) {
  StaticNetwork net(gen::path(3));
  Engine engine(net, nullptr, echo_processes(3, 1, 0));
  const SimMetrics m =
      engine.run({.max_rounds = 4, .stop_when_complete = false});
  ASSERT_EQ(m.tokens_sent_per_round.size(), 4u);
  ASSERT_EQ(m.complete_nodes_per_round.size(), 4u);
  EXPECT_EQ(m.complete_nodes_per_round[0], 2u);  // holder + neighbour
  EXPECT_EQ(m.complete_nodes_per_round[1], 3u);
}

TEST(Engine, NeverDeliversWhenDisconnected) {
  StaticNetwork net(Graph(3));  // no edges ever
  Engine engine(net, nullptr, echo_processes(3, 1, 0));
  const SimMetrics m = engine.run({.max_rounds = 5, .stop_when_complete = true});
  EXPECT_FALSE(m.all_delivered);
  EXPECT_EQ(m.rounds_to_completion, kNever);
  EXPECT_EQ(m.rounds_executed, 5u);
}

TEST(Engine, ObserverSeesEveryRound) {
  StaticNetwork net(gen::path(3));
  Engine engine(net, nullptr, echo_processes(3, 1, 0));
  TraceRecorder rec;
  engine.set_observer(rec.observer());
  engine.run({.max_rounds = 3, .stop_when_complete = false});
  ASSERT_EQ(rec.rounds().size(), 3u);
  EXPECT_EQ(rec.rounds()[0].packets.size(), 1u);
  EXPECT_EQ(rec.rounds()[0].packets[0].src, 0u);
  const std::string rendered = rec.render();
  EXPECT_NE(rendered.find("round 0:"), std::string::npos);
  EXPECT_NE(rendered.find("0 -> *"), std::string::npos);
}

TEST(Engine, RunIsSingleShot) {
  StaticNetwork net(gen::path(2));
  Engine engine(net, nullptr, echo_processes(2, 1, 0));
  engine.run({.max_rounds = 1, .stop_when_complete = true});
  EXPECT_THROW(engine.run({.max_rounds = 1, .stop_when_complete = true}),
               PreconditionError);
}

TEST(Engine, SpecOwningEngineRunsWithOwnConfig) {
  SimulationSpec spec;
  spec.network = std::make_unique<StaticNetwork>(gen::path(5));
  spec.processes = echo_processes(5, 2, 0);
  spec.engine.max_rounds = 10;
  spec.engine.stop_when_complete = true;
  Engine engine(std::move(spec));
  const SimMetrics m = engine.run();
  EXPECT_TRUE(m.all_delivered);
  EXPECT_EQ(m.rounds_to_completion, 4u);
}

TEST(Engine, SpecOwningEngineRunIsSingleShot) {
  SimulationSpec spec;
  spec.network = std::make_unique<StaticNetwork>(gen::path(2));
  spec.processes = echo_processes(2, 1, 0);
  spec.engine.max_rounds = 1;
  Engine engine(std::move(spec));
  engine.run();
  EXPECT_THROW(engine.run(), PreconditionError);
}

TEST(Engine, BorrowingEngineRejectsArglessRun) {
  StaticNetwork net(gen::path(2));
  Engine engine(net, nullptr, echo_processes(2, 1, 0));
  EXPECT_THROW(engine.run(), PreconditionError);
}

TEST(Engine, SpecRequiresNetwork) {
  SimulationSpec spec;
  spec.processes = echo_processes(2, 1, 0);
  EXPECT_THROW(Engine{std::move(spec)}, PreconditionError);
}

// run_simulation() validates the spec up front with actionable messages;
// these tests pin both the rejection and the message content so a
// mis-built spec fails naming the field to fix.

std::string run_simulation_error(SimulationSpec spec) {
  try {
    run_simulation(std::move(spec));
  } catch (const PreconditionError& e) {
    return e.what();
  }
  return "";
}

TEST(SpecValidation, RejectsZeroMaxRounds) {
  SimulationSpec spec;
  spec.network = std::make_unique<StaticNetwork>(gen::path(2));
  spec.processes = echo_processes(2, 1, 0);
  spec.engine.max_rounds = 0;
  const std::string msg = run_simulation_error(std::move(spec));
  EXPECT_NE(msg.find("max_rounds"), std::string::npos) << msg;
  EXPECT_NE(msg.find("no rounds"), std::string::npos) << msg;
}

TEST(SpecValidation, RejectsProcessCountMismatchWithCounts) {
  SimulationSpec spec;
  spec.network = std::make_unique<StaticNetwork>(gen::path(3));
  spec.processes = echo_processes(2, 1, 0);
  spec.engine.max_rounds = 5;
  const std::string msg = run_simulation_error(std::move(spec));
  // The message names both counts so the off-by-what is obvious.
  EXPECT_NE(msg.find("2 entries"), std::string::npos) << msg;
  EXPECT_NE(msg.find("3-node"), std::string::npos) << msg;
}

TEST(SpecValidation, RejectsHierarchyNodeCountMismatch) {
  SimulationSpec spec;
  spec.network = std::make_unique<StaticNetwork>(gen::path(3));
  spec.processes = echo_processes(3, 1, 0);
  spec.hierarchy = std::make_unique<HierarchySequence>(
      std::vector<HierarchyView>{HierarchyView(4)});
  spec.engine.max_rounds = 5;
  const std::string msg = run_simulation_error(std::move(spec));
  EXPECT_NE(msg.find("hierarchy"), std::string::npos) << msg;
  EXPECT_NE(msg.find("4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("3"), std::string::npos) << msg;
}

TEST(SpecValidation, RejectsTraceRoundCountMismatch) {
  // Both sides are explicit traces of different length: almost always a
  // mis-assembled spec (roles would silently freeze).
  std::vector<Graph> rounds(4, gen::path(3));
  std::vector<HierarchyView> hier(2, HierarchyView(3));
  SimulationSpec spec;
  spec.network = std::make_unique<GraphSequence>(std::move(rounds));
  spec.hierarchy = std::make_unique<HierarchySequence>(std::move(hier));
  spec.processes = echo_processes(3, 1, 0);
  spec.engine.max_rounds = 4;
  const std::string msg = run_simulation_error(std::move(spec));
  EXPECT_NE(msg.find("4 rounds"), std::string::npos) << msg;
  EXPECT_NE(msg.find("2"), std::string::npos) << msg;
}

TEST(SpecValidation, AcceptsMatchingTraces) {
  std::vector<Graph> rounds(3, gen::path(2));
  std::vector<HierarchyView> hier(3, HierarchyView(2));
  SimulationSpec spec;
  spec.network = std::make_unique<GraphSequence>(std::move(rounds));
  spec.hierarchy = std::make_unique<HierarchySequence>(std::move(hier));
  spec.processes = echo_processes(2, 1, 0);
  spec.engine.max_rounds = 3;
  const SimMetrics m = run_simulation(std::move(spec));
  EXPECT_TRUE(m.all_delivered);
}

TEST(Engine, SpecOwnedChannelIsApplied) {
  // A channel dropping everything: delivery must never happen.
  class BlackholeChannel final : public ChannelModel {
   public:
    bool deliver(Round, const Packet&, NodeId) override { return false; }
  };
  SimulationSpec spec;
  spec.network = std::make_unique<StaticNetwork>(gen::path(2));
  spec.processes = echo_processes(2, 1, 0);
  spec.channel = std::make_unique<BlackholeChannel>();
  spec.engine.max_rounds = 5;
  Engine engine(std::move(spec));
  const SimMetrics m = engine.run();
  EXPECT_FALSE(m.all_delivered);
}

TEST(Engine, RejectsWrongProcessCount) {
  StaticNetwork net(gen::path(3));
  EXPECT_THROW(Engine(net, nullptr, echo_processes(2, 1, 0)),
               PreconditionError);
}

TEST(Engine, RejectsMismatchedUniverses) {
  StaticNetwork net(gen::path(2));
  std::vector<ProcessPtr> ps;
  ps.push_back(std::make_unique<EchoProcess>(0, TokenSet(2)));
  ps.push_back(std::make_unique<EchoProcess>(1, TokenSet(3)));
  EXPECT_THROW(Engine(net, nullptr, std::move(ps)), PreconditionError);
}

TEST(Engine, HierarchyIsVisibleToProcesses) {
  /// A process that asserts its role matches the provided hierarchy.
  class RoleCheckProcess final : public Process {
   public:
    RoleCheckProcess(NodeId self, NodeRole expected)
        : self_(self), expected_(expected), ta_(1) {}
    std::optional<Packet> transmit(const RoundContext& ctx) override {
      EXPECT_EQ(ctx.role(), expected_) << "node " << self_;
      return std::nullopt;
    }
    void receive(const RoundContext&, InboxView) override {}
    const TokenSet& knowledge() const override { return ta_; }

   private:
    NodeId self_;
    NodeRole expected_;
    TokenSet ta_;
  };

  StaticNetwork net(gen::star(3));
  HierarchyView h(3);
  h.set_head(0);
  h.set_member(1, 0);
  h.set_member(2, 0, true);
  HierarchySequence hier({h});
  std::vector<ProcessPtr> ps;
  ps.push_back(std::make_unique<RoleCheckProcess>(0, NodeRole::kHead));
  ps.push_back(std::make_unique<RoleCheckProcess>(1, NodeRole::kMember));
  ps.push_back(std::make_unique<RoleCheckProcess>(2, NodeRole::kGateway));
  Engine engine(net, &hier, std::move(ps));
  const SimMetrics m = engine.run({.max_rounds = 2, .stop_when_complete = false});
  EXPECT_EQ(m.packets_sent, 0u);
}

TEST(Engine, FlatViewWhenNoHierarchy) {
  class FlatCheckProcess final : public Process {
   public:
    explicit FlatCheckProcess(NodeId) : ta_(1) {}
    std::optional<Packet> transmit(const RoundContext& ctx) override {
      EXPECT_EQ(ctx.role(), NodeRole::kMember);
      EXPECT_EQ(ctx.cluster(), kNoCluster);
      return std::nullopt;
    }
    void receive(const RoundContext&, InboxView) override {}
    const TokenSet& knowledge() const override { return ta_; }

   private:
    TokenSet ta_;
  };
  StaticNetwork net(gen::path(2));
  std::vector<ProcessPtr> ps;
  ps.push_back(std::make_unique<FlatCheckProcess>(0));
  ps.push_back(std::make_unique<FlatCheckProcess>(1));
  Engine engine(net, nullptr, std::move(ps));
  engine.run({.max_rounds = 1, .stop_when_complete = false});
}

}  // namespace
}  // namespace hinet
