// Crash-fault injection and hierarchy self-repair.
#include "graph/crashes.hpp"

#include <gtest/gtest.h>

#include "analysis/assignment.hpp"
#include "baseline/klo.hpp"
#include "cluster/maintenance.hpp"
#include "core/alg2.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

namespace hinet {
namespace {

TEST(Crashes, EdgesRemovedFromCrashRoundOn) {
  StaticNetwork base(gen::complete(4));
  const CrashEvent plan[] = {{1, 2}};
  GraphSequence seq = apply_crashes(base, 5, plan);
  for (Round r = 0; r < 2; ++r) {
    EXPECT_EQ(seq.graph_at(r).degree(1), 3u) << "round " << r;
  }
  for (Round r = 2; r < 5; ++r) {
    EXPECT_EQ(seq.graph_at(r).degree(1), 0u) << "round " << r;
    // Other nodes keep their mutual edges.
    EXPECT_TRUE(seq.graph_at(r).has_edge(0, 2));
  }
}

TEST(Crashes, MultipleCrashesAccumulate) {
  StaticNetwork base(gen::complete(5));
  const CrashEvent plan[] = {{0, 1}, {4, 3}};
  GraphSequence seq = apply_crashes(base, 5, plan);
  EXPECT_EQ(seq.graph_at(0).edge_count(), 10u);
  EXPECT_EQ(seq.graph_at(1).edge_count(), 6u);  // minus node 0's 4 edges
  EXPECT_EQ(seq.graph_at(3).edge_count(), 3u);  // minus node 4's remaining 3
}

TEST(Crashes, RecoveryRestoresEdges) {
  // Node 1 is down for [2, 5): full degree before, isolated during, and
  // full degree again from the recovery round on.
  StaticNetwork base(gen::complete(4));
  const CrashEvent plan[] = {{1, 2, 5}};
  GraphSequence seq = apply_crashes(base, 8, plan);
  for (Round r = 0; r < 2; ++r) {
    EXPECT_EQ(seq.graph_at(r).degree(1), 3u) << "round " << r;
  }
  for (Round r = 2; r < 5; ++r) {
    EXPECT_EQ(seq.graph_at(r).degree(1), 0u) << "round " << r;
  }
  for (Round r = 5; r < 8; ++r) {
    EXPECT_EQ(seq.graph_at(r).degree(1), 3u) << "round " << r;
  }
}

TEST(Crashes, DownAtMatchesHalfOpenWindow) {
  const CrashEvent e{2, 3, 6};
  EXPECT_FALSE(e.down_at(2));
  EXPECT_TRUE(e.down_at(3));
  EXPECT_TRUE(e.down_at(5));
  EXPECT_FALSE(e.down_at(6));
  const CrashEvent permanent{2, 3};
  EXPECT_TRUE(permanent.down_at(1'000'000));
}

TEST(Crashes, AliveNodesSeesRecovery) {
  const CrashEvent plan[] = {{1, 2, 4}, {3, 0}};
  EXPECT_EQ(alive_nodes(5, 0, plan), (std::vector<NodeId>{0, 1, 2, 4}));
  EXPECT_EQ(alive_nodes(5, 2, plan), (std::vector<NodeId>{0, 2, 4}));
  EXPECT_EQ(alive_nodes(5, 4, plan), (std::vector<NodeId>{0, 1, 2, 4}));
}

TEST(Crashes, RecoveryNotAfterCrashRejected) {
  StaticNetwork base(gen::complete(3));
  const CrashEvent plan[] = {{1, 4, 4}};  // empty window: surely a typo
  EXPECT_THROW(apply_crashes(base, 6, plan), PreconditionError);
}

TEST(Crashes, RecoveredRelayResumesForwarding) {
  // A 4-node path 0-1-2-3; relay 1 sleeps for rounds [1, 6).  Token 0
  // starts at node 0 and can only cross through node 1, so nodes 2 and 3
  // learn it only after the recovery.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  StaticNetwork base(g);
  const CrashEvent plan[] = {{1, 1, 6}};
  GraphSequence seq = apply_crashes(base, 12, plan);

  std::vector<TokenSet> init(4, TokenSet(1));
  init[0].insert(0);
  KloFloodParams p;
  p.k = 1;
  p.rounds = 12;
  auto procs = make_klo_flood_processes(init, p);
  std::vector<const Process*> views;
  for (const auto& pr : procs) views.push_back(pr.get());
  Engine engine(seq, nullptr, std::move(procs));
  const SimMetrics m =
      engine.run({.max_rounds = 12, .stop_when_complete = false});
  EXPECT_TRUE(m.all_delivered);
  // Completion could not have happened while the relay slept.
  ASSERT_TRUE(m.rounds_to_completion != kNever);
  EXPECT_GT(m.rounds_to_completion, 6u);
}

TEST(Crashes, OutOfRangeNodeRejected) {
  StaticNetwork base(Graph(3));
  const CrashEvent plan[] = {{7, 0}};
  EXPECT_THROW(apply_crashes(base, 2, plan), PreconditionError);
}

TEST(Crashes, AliveNodesTracksPlan) {
  const CrashEvent plan[] = {{1, 2}, {3, 4}};
  EXPECT_EQ(alive_nodes(5, 0, plan), (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(alive_nodes(5, 2, plan), (std::vector<NodeId>{0, 2, 3, 4}));
  EXPECT_EQ(alive_nodes(5, 4, plan), (std::vector<NodeId>{0, 2, 4}));
}

TEST(Crashes, MaintenanceRepairsAfterHeadCrash) {
  // Star with hub 0 as head; hub crashes at round 3: every member must
  // re-affiliate or self-promote, and the hierarchy stays valid.
  StaticNetwork base([&] {
    Graph g = gen::star(6);
    // Ring among the leaves so survivors stay connected after the crash.
    for (NodeId v = 1; v < 5; ++v) g.add_edge(v, v + 1);
    g.add_edge(5, 1);
    return g;
  }());
  const CrashEvent plan[] = {{0, 3}};
  GraphSequence seq = apply_crashes(base, 10, plan);

  ClusterMaintainer maint(seq.graph_at(0));
  ASSERT_TRUE(maint.view().is_head(0));
  for (Round r = 1; r < 10; ++r) {
    maint.step(seq.graph_at(r));
    EXPECT_EQ(maint.view().validate(seq.graph_at(r)), "") << "round " << r;
  }
  // After the crash some survivor must have become a head.
  bool survivor_head = false;
  for (NodeId v = 1; v < 6; ++v) survivor_head |= maint.view().is_head(v);
  EXPECT_TRUE(survivor_head);
  EXPECT_GE(maint.stats().head_promotions, 1u);
}

TEST(Crashes, SurvivorsStillDisseminateSurvivingTokens) {
  // Token holders stay alive; a relay node crashes mid-run.  The ring
  // provides alternate paths, so all survivors must still complete.
  Graph g = gen::ring(8);
  StaticNetwork base(g);
  const CrashEvent plan[] = {{2, 3}};
  GraphSequence seq = apply_crashes(base, 30, plan);

  std::vector<TokenSet> init(8, TokenSet(2));
  init[0].insert(0);
  init[4].insert(1);
  KloFloodParams p;
  p.k = 2;
  p.rounds = 30;
  auto procs = make_klo_flood_processes(init, p);
  std::vector<const Process*> views;
  for (const auto& pr : procs) views.push_back(pr.get());
  Engine engine(seq, nullptr, std::move(procs));
  engine.run({.max_rounds = 30, .stop_when_complete = false});

  for (NodeId v : alive_nodes(8, 30, plan)) {
    EXPECT_TRUE(views[v]->knowledge().full()) << "survivor " << v;
  }
}

TEST(Crashes, SoleHolderCrashLosesTheToken) {
  // Node 3 holds token 0 and dies at round 0: nobody can ever learn it.
  StaticNetwork base(gen::complete(5));
  const CrashEvent plan[] = {{3, 0}};
  GraphSequence seq = apply_crashes(base, 10, plan);
  std::vector<TokenSet> init(5, TokenSet(1));
  init[3].insert(0);
  KloFloodParams p;
  p.k = 1;
  p.rounds = 10;
  auto procs = make_klo_flood_processes(init, p);
  std::vector<const Process*> views;
  for (const auto& pr : procs) views.push_back(pr.get());
  Engine engine(seq, nullptr, std::move(procs));
  const SimMetrics m =
      engine.run({.max_rounds = 10, .stop_when_complete = false});
  EXPECT_FALSE(m.all_delivered);
  for (NodeId v = 0; v < 5; ++v) {
    if (v == 3) continue;
    EXPECT_TRUE(views[v]->knowledge().empty());
  }
}

}  // namespace
}  // namespace hinet
