// Manhattan-grid mobility.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/mobility.hpp"
#include "sim/metrics.hpp"

namespace hinet {
namespace {

bool on_a_street(const gen::Point2D& p, std::size_t streets, double eps) {
  const double step = 1.0 / static_cast<double>(streets - 1);
  auto near_line = [&](double coord) {
    const double scaled = coord / step;
    return std::fabs(scaled - std::round(scaled)) < eps;
  };
  return near_line(p.x) || near_line(p.y);
}

TEST(Manhattan, PositionsStayOnStreets) {
  MobilityConfig cfg;
  cfg.nodes = 20;
  cfg.model = MobilityModel::kManhattan;
  cfg.streets = 5;
  cfg.rounds = 60;
  cfg.min_speed = 0.01;
  cfg.max_speed = 0.05;
  cfg.seed = 3;
  MobilityTrace trace(cfg);
  for (Round r = 0; r < 60; ++r) {
    for (const auto& p : trace.positions_at(r)) {
      EXPECT_GE(p.x, -1e-9);
      EXPECT_LE(p.x, 1.0 + 1e-9);
      EXPECT_GE(p.y, -1e-9);
      EXPECT_LE(p.y, 1.0 + 1e-9);
      EXPECT_TRUE(on_a_street(p, cfg.streets, 1e-6))
          << "round " << r << " (" << p.x << "," << p.y << ")";
    }
  }
}

TEST(Manhattan, NodesMoveBetweenIntersections) {
  MobilityConfig cfg;
  cfg.nodes = 8;
  cfg.model = MobilityModel::kManhattan;
  cfg.streets = 4;
  cfg.rounds = 40;
  cfg.min_speed = 0.02;
  cfg.max_speed = 0.04;
  cfg.seed = 7;
  MobilityTrace trace(cfg);
  const auto& p0 = trace.positions_at(0);
  const auto& p39 = trace.positions_at(39);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    if (std::fabs(p0[i].x - p39[i].x) + std::fabs(p0[i].y - p39[i].y) > 1e-6) {
      ++moved;
    }
  }
  EXPECT_EQ(moved, 8u);
}

TEST(Manhattan, StepDistanceRespectsSpeed) {
  MobilityConfig cfg;
  cfg.nodes = 6;
  cfg.model = MobilityModel::kManhattan;
  cfg.streets = 5;
  cfg.rounds = 30;
  cfg.min_speed = 0.01;
  cfg.max_speed = 0.03;
  cfg.seed = 11;
  MobilityTrace trace(cfg);
  for (Round r = 1; r < 30; ++r) {
    const auto& prev = trace.positions_at(r - 1);
    const auto& cur = trace.positions_at(r);
    for (std::size_t i = 0; i < 6; ++i) {
      // Manhattan (L1) distance per round is bounded by max_speed (a turn
      // mid-step preserves path length, not straight-line distance).
      const double d = std::fabs(prev[i].x - cur[i].x) +
                       std::fabs(prev[i].y - cur[i].y);
      EXPECT_LE(d, cfg.max_speed + 1e-9) << "round " << r << " node " << i;
    }
  }
}

TEST(Manhattan, DeterministicPerSeed) {
  MobilityConfig cfg;
  cfg.nodes = 10;
  cfg.model = MobilityModel::kManhattan;
  cfg.streets = 4;
  cfg.rounds = 20;
  cfg.seed = 5;
  MobilityTrace a(cfg);
  MobilityTrace b(cfg);
  for (Round r = 0; r < 20; ++r) {
    EXPECT_TRUE(a.network().graph_at(r) == b.network().graph_at(r));
  }
}

TEST(Manhattan, RejectsDegenerateGrid) {
  MobilityConfig cfg;
  cfg.nodes = 4;
  cfg.model = MobilityModel::kManhattan;
  cfg.streets = 1;
  cfg.rounds = 2;
  EXPECT_THROW(MobilityTrace{cfg}, PreconditionError);
}

TEST(WireModel, BytesFromPacketsAndTokens) {
  SimMetrics m;
  m.packets_sent = 10;
  m.tokens_sent = 40;
  const WireModel w{64, 16};
  EXPECT_EQ(total_wire_bytes(m, w), 10u * 16u + 40u * 64u);
  EXPECT_EQ(total_wire_bytes(SimMetrics{}, w), 0u);
}

}  // namespace
}  // namespace hinet
