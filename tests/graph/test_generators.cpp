#include "graph/generators.hpp"

#include <gtest/gtest.h>

namespace hinet {
namespace {

TEST(Generators, PathShape) {
  const Graph g = gen::path(5);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.diameter(), 4);
}

TEST(Generators, PathDegenerate) {
  EXPECT_EQ(gen::path(0).node_count(), 0u);
  EXPECT_EQ(gen::path(1).edge_count(), 0u);
}

TEST(Generators, RingShape) {
  const Graph g = gen::ring(6);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.diameter(), 3);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_THROW(gen::ring(2), PreconditionError);
}

TEST(Generators, StarShape) {
  const Graph g = gen::star(7);
  EXPECT_EQ(g.degree(0), 6u);
  for (NodeId v = 1; v < 7; ++v) EXPECT_EQ(g.degree(v), 1u);
  EXPECT_EQ(g.diameter(), 2);
}

TEST(Generators, CompleteShape) {
  const Graph g = gen::complete(5);
  EXPECT_EQ(g.edge_count(), 10u);
  EXPECT_EQ(g.diameter(), 1);
}

TEST(Generators, GridShape) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8.
  EXPECT_EQ(g.edge_count(), 17u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.diameter(), 5);  // manhattan corner-to-corner
}

TEST(Generators, ErdosRenyiExtremes) {
  Rng rng(1);
  EXPECT_EQ(gen::erdos_renyi(10, 0.0, rng).edge_count(), 0u);
  EXPECT_EQ(gen::erdos_renyi(10, 1.0, rng).edge_count(), 45u);
  EXPECT_THROW(gen::erdos_renyi(10, 1.5, rng), PreconditionError);
}

TEST(Generators, ErdosRenyiDensityNearP) {
  Rng rng(2);
  const Graph g = gen::erdos_renyi(60, 0.3, rng);
  const double density =
      static_cast<double>(g.edge_count()) / (60.0 * 59.0 / 2.0);
  EXPECT_NEAR(density, 0.3, 0.06);
}

TEST(Generators, RandomTreeIsSpanningTree) {
  Rng rng(3);
  for (std::size_t n : {1u, 2u, 3u, 5u, 20u, 64u}) {
    const Graph g = gen::random_tree(n, rng);
    EXPECT_EQ(g.node_count(), n);
    EXPECT_EQ(g.edge_count(), n - 1);
    EXPECT_TRUE(g.is_connected());
  }
}

TEST(Generators, RandomTreeVariesWithSeed) {
  Rng a(10), b(11);
  const Graph ga = gen::random_tree(30, a);
  const Graph gb = gen::random_tree(30, b);
  EXPECT_FALSE(ga == gb);  // overwhelmingly likely
}

TEST(Generators, RandomConnectedHasExtraEdges) {
  Rng rng(4);
  const Graph g = gen::random_connected(20, 10, rng);
  EXPECT_TRUE(g.is_connected());
  EXPECT_GE(g.edge_count(), 19u);
  EXPECT_LE(g.edge_count(), 29u);
}

TEST(Generators, RandomConnectedClampsToComplete) {
  Rng rng(4);
  const Graph g = gen::random_connected(4, 1000, rng);
  EXPECT_EQ(g.edge_count(), 6u);
}

TEST(Generators, GeometricRadiusControlsEdges) {
  std::vector<gen::Point2D> pts{{0.0, 0.0}, {0.5, 0.0}, {1.0, 0.0}};
  EXPECT_EQ(gen::geometric(pts, 0.4).edge_count(), 0u);
  EXPECT_EQ(gen::geometric(pts, 0.5).edge_count(), 2u);
  EXPECT_EQ(gen::geometric(pts, 1.0).edge_count(), 3u);
  EXPECT_THROW(gen::geometric(pts, -0.1), PreconditionError);
}

TEST(Generators, RandomPointsInUnitSquare) {
  Rng rng(5);
  for (const auto& p : gen::random_points(100, rng)) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 1.0);
  }
}

// Parameterized sweep: every random tree over many seeds is a tree.
class RandomTreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTreeProperty, AlwaysASpanningTree) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.below(100);
  const Graph g = gen::random_tree(n, rng);
  EXPECT_EQ(g.edge_count(), n - 1);
  EXPECT_TRUE(g.is_connected());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeProperty,
                         ::testing::Range<std::uint64_t>(0, 32));

}  // namespace
}  // namespace hinet
