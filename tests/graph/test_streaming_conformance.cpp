// Streaming == materialized conformance suite.
//
// The streaming trace layer's whole contract is byte-identical round
// emission: for every generator, StreamingNetwork::graph_at(r) must equal
// the materialized trace's graph for round r — in order, out of order,
// past the horizon, and composed with fault decorators.  This template
// pins that contract for every streaming provider in the repo so a future
// generator change that breaks draw-order equivalence fails loudly here.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/hinet_generator.hpp"
#include "graph/adversary.hpp"
#include "graph/dynamic.hpp"
#include "graph/markovian.hpp"
#include "graph/mobility.hpp"
#include "sim/faults.hpp"
#include "util/binary_io.hpp"

namespace hinet {
namespace {

/// One conformance case: a streaming provider factory plus the
/// materialized reference trace it must reproduce.
struct Case {
  std::string name;
  std::function<std::unique_ptr<StreamingNetwork>(std::size_t window)> stream;
  GraphSequence reference;
};

std::vector<Case> conformance_cases() {
  std::vector<Case> cases;

  MarkovianConfig emdg;
  emdg.nodes = 24;
  emdg.rounds = 40;
  emdg.seed = 7;
  cases.push_back({"emdg",
                   [emdg](std::size_t w) {
                     return std::make_unique<EdgeMarkovianNetwork>(emdg, w);
                   },
                   make_edge_markovian_trace(emdg)});

  AdversaryConfig adv;
  adv.nodes = 20;
  adv.interval = 5;
  adv.rounds = 37;  // deliberately not a multiple of the interval
  adv.churn_edges = 3;
  adv.seed = 11;
  cases.push_back({"t_interval_tree",
                   [adv](std::size_t w) {
                     return std::make_unique<TIntervalNetwork>(adv, false, w);
                   },
                   make_t_interval_trace(adv)});
  cases.push_back({"t_interval_path",
                   [adv](std::size_t w) {
                     return std::make_unique<TIntervalNetwork>(adv, true, w);
                   },
                   make_t_interval_path_trace(adv)});

  for (const MobilityModel model :
       {MobilityModel::kRandomWaypoint, MobilityModel::kRandomWalk,
        MobilityModel::kManhattan}) {
    MobilityConfig mob;
    mob.nodes = 16;
    mob.model = model;
    mob.rounds = 30;
    mob.pause_rounds = model == MobilityModel::kRandomWaypoint ? 2 : 0;
    mob.seed = 13;
    const char* name = model == MobilityModel::kRandomWaypoint
                           ? "mobility_waypoint"
                           : model == MobilityModel::kRandomWalk
                                 ? "mobility_walk"
                                 : "mobility_manhattan";
    cases.push_back({name,
                     [mob](std::size_t w) {
                       return std::make_unique<MobilityNetwork>(mob, w);
                     },
                     MobilityTrace(mob).network()});
  }

  return cases;
}

TEST(StreamingConformance, ForwardScanMatchesMaterialized) {
  for (Case& c : conformance_cases()) {
    SCOPED_TRACE(c.name);
    auto net = c.stream(2);
    ASSERT_EQ(net->node_count(), c.reference.node_count());
    ASSERT_EQ(net->round_count(), c.reference.round_count());
    for (Round r = 0; r < c.reference.round_count(); ++r) {
      EXPECT_EQ(net->graph_at(r), c.reference.graph_at(r))
          << "round " << r << " diverges";
    }
    EXPECT_EQ(net->rewinds(), 0u) << "forward scan must never replay";
  }
}

TEST(StreamingConformance, PastHorizonRepeatsFinalRound) {
  for (Case& c : conformance_cases()) {
    SCOPED_TRACE(c.name);
    auto net = c.stream(2);
    const std::size_t horizon = c.reference.round_count();
    // Same repeat-final-round convention as GraphSequence, including far
    // past the end.
    EXPECT_EQ(net->graph_at(horizon), c.reference.graph_at(horizon));
    EXPECT_EQ(net->graph_at(horizon + 5), c.reference.graph_at(horizon + 5));
    EXPECT_EQ(net->graph_at(horizon - 1), c.reference.graph_at(horizon - 1));
  }
}

TEST(StreamingConformance, BackwardAccessReplaysDeterministically) {
  for (Case& c : conformance_cases()) {
    SCOPED_TRACE(c.name);
    auto net = c.stream(2);
    const std::size_t horizon = c.reference.round_count();
    // Jump to the end, then re-read round 0: forces a rewind, which must
    // reproduce the identical prefix.
    (void)net->graph_at(horizon - 1);
    EXPECT_EQ(net->graph_at(0), c.reference.graph_at(0));
    EXPECT_GE(net->rewinds(), 1u);
    // And the ring still serves the freshly replayed rounds.
    EXPECT_EQ(net->graph_at(1), c.reference.graph_at(1));
  }
}

TEST(StreamingConformance, WindowedResidencyServesRecentRounds) {
  for (Case& c : conformance_cases()) {
    SCOPED_TRACE(c.name);
    auto net = c.stream(4);
    const std::size_t horizon = c.reference.round_count();
    ASSERT_GE(horizon, 8u);
    (void)net->graph_at(7);
    // Rounds 4..7 are inside the ring: reading them back is replay-free.
    for (Round r = 4; r <= 7; ++r) {
      EXPECT_EQ(net->graph_at(r), c.reference.graph_at(r));
    }
    EXPECT_EQ(net->rewinds(), 0u);
  }
}

TEST(StreamingConformance, FaultyNetworkComposesWithStreaming) {
  for (Case& c : conformance_cases()) {
    SCOPED_TRACE(c.name);
    FaultPlan plan;
    CrashEvent crash;
    crash.node = 3;
    crash.round = 5;
    crash.recovery = 12;
    plan.crashes.push_back(crash);
    LinkBurst burst;
    burst.start = 8;
    burst.length = 4;
    burst.links = {{0, 1}, {1, 2}};
    plan.bursts.push_back(burst);

    auto net = c.stream(2);
    FaultyNetwork faulty_stream(*net, plan);
    FaultyNetwork faulty_ref(c.reference, plan);
    for (Round r = 0; r < c.reference.round_count(); ++r) {
      EXPECT_EQ(faulty_stream.graph_at(r), faulty_ref.graph_at(r))
          << "round " << r << " diverges under faults";
    }
  }
}

TEST(StreamingConformance, TraceStateRoundTripsMidStream) {
  for (Case& c : conformance_cases()) {
    SCOPED_TRACE(c.name);
    auto net = c.stream(2);
    const std::size_t horizon = c.reference.round_count();
    const Round cut = horizon / 2;
    for (Round r = 0; r <= cut; ++r) (void)net->graph_at(r);

    ByteWriter w;
    net->save_trace_state(w);

    // Restore into a FRESH provider: it must continue from the cut
    // without re-reading the prefix.
    auto resumed = c.stream(2);
    ByteReader r(w.buffer(), "trace state");
    resumed->restore_trace_state(r);
    r.expect_done();
    EXPECT_EQ(resumed->frontier(), cut + 1);
    for (Round rr = cut + 1; rr < horizon; ++rr) {
      EXPECT_EQ(resumed->graph_at(rr), c.reference.graph_at(rr))
          << "round " << rr << " diverges after restore";
    }
    EXPECT_EQ(resumed->rewinds(), 0u)
        << "post-restore forward scan must not replay the prefix";
  }
}

TEST(StreamingConformance, HiNetStreamMatchesMaterializedTrace) {
  HiNetConfig cfg;
  cfg.nodes = 40;
  cfg.heads = 5;
  cfg.phase_length = 4;
  cfg.phases = 6;
  cfg.hop_l = 2;
  cfg.head_churn_prob = 0.3;
  cfg.backbone_rewire_prob = 0.5;
  cfg.churn_edges = 3;
  cfg.seed = 21;

  HiNetTrace trace = make_hinet_trace(cfg);
  HiNetStream stream = make_hinet_stream(cfg);
  const std::size_t rounds = cfg.phases * cfg.phase_length;
  ASSERT_EQ(stream.rounds, rounds);

  for (Round r = 0; r < rounds; ++r) {
    EXPECT_EQ(stream.topology->graph_at(r), trace.ctvg.graph_at(r))
        << "graph diverges at round " << r;
    EXPECT_TRUE(stream.hierarchy->hierarchy_at(r) == trace.ctvg.hierarchy_at(r))
        << "hierarchy diverges at round " << r;
  }
  // Past-horizon clamp matches the sequence convention on both views.
  EXPECT_EQ(stream.topology->graph_at(rounds + 3),
            trace.ctvg.graph_at(rounds + 3));
  EXPECT_TRUE(stream.hierarchy->hierarchy_at(rounds + 3) ==
              trace.ctvg.hierarchy_at(rounds + 3));

  // The dry planning pass reports the exact realized-trace statistics.
  EXPECT_EQ(stream.stats.theta, trace.stats.theta);
  EXPECT_EQ(stream.stats.reaffiliation_events,
            trace.stats.reaffiliation_events);
  EXPECT_EQ(stream.stats.head_changes, trace.stats.head_changes);
  EXPECT_DOUBLE_EQ(stream.stats.mean_members, trace.stats.mean_members);
  EXPECT_DOUBLE_EQ(stream.stats.mean_reaffiliations,
                   trace.stats.mean_reaffiliations);
}

TEST(StreamingConformance, HiNetStreamBackwardAccessReplays) {
  HiNetConfig cfg;
  cfg.nodes = 30;
  cfg.heads = 4;
  cfg.phase_length = 3;
  cfg.phases = 5;
  cfg.seed = 5;

  HiNetTrace trace = make_hinet_trace(cfg);
  HiNetStream stream = make_hinet_stream(cfg);
  const std::size_t rounds = cfg.phases * cfg.phase_length;
  (void)stream.topology->graph_at(rounds - 1);
  for (Round r = 0; r < rounds; ++r) {
    EXPECT_EQ(stream.topology->graph_at(r), trace.ctvg.graph_at(r));
    EXPECT_TRUE(stream.hierarchy->hierarchy_at(r) ==
                trace.ctvg.hierarchy_at(r));
  }
}

TEST(StreamingConformance, MaterializeBudgetGuardThrows) {
  MarkovianConfig cfg;
  cfg.nodes = 64;
  cfg.rounds = 1000;
  cfg.seed = 3;
  EdgeMarkovianNetwork net(cfg);
  // A one-graph byte budget cannot host a thousand rounds.
  EXPECT_THROW(materialize(net, cfg.rounds, /*byte_budget=*/1024),
               PreconditionError);
  // A generous budget materializes fine and matches the stream.
  EdgeMarkovianNetwork net2(cfg);
  GraphSequence seq = materialize(net2, 8);
  EdgeMarkovianNetwork net3(cfg);
  for (Round r = 0; r < 8; ++r) {
    EXPECT_EQ(net3.graph_at(r), seq.graph_at(r));
  }
}

}  // namespace
}  // namespace hinet
