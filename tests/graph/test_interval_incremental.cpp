// Differential suite: incremental T-interval connectivity checkers vs the
// naive per-window reference implementations.
//
// The incremental checkers (graph/interval.hpp) maintain per-edge run
// lengths across window shifts, Casteigts-style; the *_reference forms
// recompute every window's intersection from scratch.  They must agree on
// every trace — this suite sweeps the repo's generators (plus adversarial
// hand-built traces around the algorithm's edge cases) and compares both
// answers for every T.
#include <gtest/gtest.h>

#include <vector>

#include "graph/adversary.hpp"
#include "graph/dynamic.hpp"
#include "graph/interval.hpp"
#include "graph/markovian.hpp"
#include "graph/mobility.hpp"

namespace hinet {
namespace {

void expect_agreement(DynamicNetwork& net, std::size_t rounds) {
  const std::size_t incremental = max_interval_connectivity(net, rounds);
  const std::size_t reference =
      max_interval_connectivity_reference(net, rounds);
  EXPECT_EQ(incremental, reference);
  for (std::size_t t = 1; t <= rounds; ++t) {
    EXPECT_EQ(is_t_interval_connected(net, rounds, t),
              is_t_interval_connected_reference(net, rounds, t))
        << "T = " << t;
  }
}

TEST(IntervalIncremental, AgreesOnAdversarialTraces) {
  for (const std::size_t interval : {1u, 3u, 5u}) {
    AdversaryConfig cfg;
    cfg.nodes = 14;
    cfg.interval = interval;
    cfg.rounds = 22;
    cfg.churn_edges = 2;
    cfg.seed = 31 + interval;
    GraphSequence tree = make_t_interval_trace(cfg);
    SCOPED_TRACE("tree interval=" + std::to_string(interval));
    expect_agreement(tree, cfg.rounds);
    GraphSequence path = make_t_interval_path_trace(cfg);
    SCOPED_TRACE("path interval=" + std::to_string(interval));
    expect_agreement(path, cfg.rounds);
  }
}

TEST(IntervalIncremental, AgreesOnEdgeMarkovianTraces) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    MarkovianConfig cfg;
    cfg.nodes = 10;
    cfg.rounds = 18;
    cfg.initial = 0.35;
    cfg.birth = 0.15;
    cfg.death = 0.25;
    cfg.seed = seed;
    GraphSequence seq = make_edge_markovian_trace(cfg);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    expect_agreement(seq, cfg.rounds);
  }
}

TEST(IntervalIncremental, AgreesOnMobilityTraces) {
  MobilityConfig cfg;
  cfg.nodes = 12;
  cfg.radius = 0.45;  // dense enough that some windows stay connected
  cfg.rounds = 16;
  cfg.seed = 9;
  MobilityTrace trace(cfg);
  expect_agreement(trace.network(), cfg.rounds);
}

TEST(IntervalIncremental, HandBuiltEdgeCases) {
  // Always the same connected graph: T* = rounds.
  {
    Graph ring(4);
    ring.add_edge(0, 1);
    ring.add_edge(1, 2);
    ring.add_edge(2, 3);
    ring.add_edge(3, 0);
    GraphSequence seq(std::vector<Graph>(6, ring));
    expect_agreement(seq, 6);
    EXPECT_EQ(max_interval_connectivity(seq, 6), 6u);
  }
  // One disconnected round caps T* at 0.
  {
    Graph conn(3);
    conn.add_edge(0, 1);
    conn.add_edge(1, 2);
    GraphSequence seq({conn, Graph(3), conn});
    expect_agreement(seq, 3);
    EXPECT_EQ(max_interval_connectivity(seq, 3), 0u);
  }
  // Connectivity through *different* spanning edges each round: every
  // round is connected but no window of 2 shares a spanning subgraph.
  {
    Graph a(3);
    a.add_edge(0, 1);
    a.add_edge(1, 2);
    Graph b(3);
    b.add_edge(0, 2);
    b.add_edge(0, 1);
    GraphSequence seq({a, b, a, b});
    expect_agreement(seq, 4);
    EXPECT_EQ(max_interval_connectivity(seq, 4), 1u);
  }
  // A shared stable edge set that spans: T* grows past 1.
  {
    Graph base(4);
    base.add_edge(0, 1);
    base.add_edge(1, 2);
    base.add_edge(2, 3);
    Graph noisy = base;
    noisy.add_edge(0, 3);
    GraphSequence seq({base, noisy, base, noisy, base});
    expect_agreement(seq, 5);
    EXPECT_EQ(max_interval_connectivity(seq, 5), 5u);
  }
  // Single node / empty-ish cases are vacuously connected at any T.
  {
    GraphSequence seq(std::vector<Graph>(4, Graph(1)));
    expect_agreement(seq, 4);
    EXPECT_EQ(max_interval_connectivity(seq, 4), 4u);
  }
  // Two isolated nodes are never connected.
  {
    GraphSequence seq(std::vector<Graph>(3, Graph(2)));
    expect_agreement(seq, 3);
    EXPECT_EQ(max_interval_connectivity(seq, 3), 0u);
  }
}

TEST(IntervalIncremental, RunTrackerThresholdMatchesStableSubgraph) {
  MarkovianConfig cfg;
  cfg.nodes = 8;
  cfg.rounds = 12;
  cfg.initial = 0.4;
  cfg.birth = 0.2;
  cfg.death = 0.2;
  cfg.seed = 17;
  GraphSequence seq = make_edge_markovian_trace(cfg);

  IntervalRunTracker tracker(cfg.nodes);
  for (Round r = 0; r < cfg.rounds; ++r) {
    tracker.push(seq.graph_at(r));
    for (std::size_t t = 1; t <= r + 1; ++t) {
      // threshold_subgraph(t) == intersection of the last t rounds.
      EXPECT_EQ(tracker.threshold_subgraph(t),
                stable_subgraph(seq, r + 1 - t, t))
          << "r=" << r << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace hinet
