// Tests for the dynamic-network layer: sequences, the adversarial
// T-interval generator, EMDG, mobility, and the interval-connectivity
// checkers.
#include <gtest/gtest.h>

#include "graph/adversary.hpp"
#include "graph/dynamic.hpp"
#include "graph/generators.hpp"
#include "graph/interval.hpp"
#include "graph/markovian.hpp"
#include "graph/mobility.hpp"

namespace hinet {
namespace {

TEST(GraphSequence, BasicAccessAndClamping) {
  std::vector<Graph> rounds;
  rounds.push_back(gen::path(3));
  rounds.push_back(gen::complete(3));
  GraphSequence seq(std::move(rounds));
  EXPECT_EQ(seq.node_count(), 3u);
  EXPECT_EQ(seq.round_count(), 2u);
  EXPECT_EQ(seq.graph_at(0).edge_count(), 2u);
  EXPECT_EQ(seq.graph_at(1).edge_count(), 3u);
  // Past-the-end rounds repeat the final graph.
  EXPECT_EQ(seq.graph_at(99).edge_count(), 3u);
}

TEST(GraphSequence, RejectsEmptyAndMismatched) {
  EXPECT_THROW(GraphSequence({}), PreconditionError);
  std::vector<Graph> rounds;
  rounds.push_back(Graph(3));
  rounds.push_back(Graph(4));
  EXPECT_THROW(GraphSequence(std::move(rounds)), PreconditionError);
}

TEST(GraphSequence, PushBackExtends) {
  GraphSequence seq({Graph(2)});
  seq.push_back(gen::path(2));
  EXPECT_EQ(seq.round_count(), 2u);
  EXPECT_THROW(seq.push_back(Graph(3)), PreconditionError);
}

TEST(StaticNetwork, SameGraphEveryRound) {
  StaticNetwork net(gen::ring(4));
  EXPECT_EQ(net.node_count(), 4u);
  EXPECT_EQ(net.graph_at(0).edge_count(), 4u);
  EXPECT_EQ(net.graph_at(1000).edge_count(), 4u);
}

TEST(Adversary, TraceIsTIntervalConnectedByConstruction) {
  for (std::size_t t : {1u, 3u, 5u}) {
    AdversaryConfig cfg;
    cfg.nodes = 20;
    cfg.interval = t;
    cfg.rounds = 30;
    cfg.churn_edges = 5;
    cfg.seed = 7;
    GraphSequence seq = make_t_interval_trace(cfg);
    EXPECT_EQ(seq.round_count(), 30u);
    EXPECT_TRUE(is_t_interval_connected(seq, 30, t))
        << "T=" << t << " violated";
  }
}

TEST(Adversary, PathVariantIsAlsoTIntervalConnected) {
  AdversaryConfig cfg;
  cfg.nodes = 15;
  cfg.interval = 4;
  cfg.rounds = 24;
  cfg.churn_edges = 0;
  cfg.seed = 3;
  GraphSequence seq = make_t_interval_path_trace(cfg);
  EXPECT_TRUE(is_t_interval_connected(seq, 24, 4));
  // Without churn, each round carries at most two overlapping relabelled
  // paths (current + next window's backbone).
  EXPECT_LE(seq.graph_at(0).edge_count(), 28u);
  // Every sliding window's stable subgraph contains a spanning path.
  for (Round start = 0; start + 4 <= 24; ++start) {
    const Graph stable = stable_subgraph(seq, start, 4);
    EXPECT_TRUE(stable.is_connected()) << "window " << start;
  }
}

TEST(Adversary, DeterministicPerSeed) {
  AdversaryConfig cfg;
  cfg.nodes = 12;
  cfg.interval = 2;
  cfg.rounds = 10;
  cfg.churn_edges = 3;
  cfg.seed = 42;
  GraphSequence a = make_t_interval_trace(cfg);
  GraphSequence b = make_t_interval_trace(cfg);
  for (Round r = 0; r < 10; ++r) {
    EXPECT_TRUE(a.graph_at(r) == b.graph_at(r));
  }
}

TEST(Adversary, ChurnAddsEdgesBeyondBackbone) {
  AdversaryConfig cfg;
  cfg.nodes = 30;
  cfg.interval = 5;
  cfg.rounds = 5;
  cfg.churn_edges = 20;
  cfg.seed = 1;
  GraphSequence seq = make_t_interval_trace(cfg);
  EXPECT_GT(seq.graph_at(0).edge_count(), 29u);
}

TEST(Adversary, RejectsBadConfig) {
  AdversaryConfig cfg;
  EXPECT_THROW(make_t_interval_trace(cfg), PreconditionError);
}

TEST(Markovian, StationaryDensityFormula) {
  EXPECT_DOUBLE_EQ(edge_markovian_stationary_density(0.1, 0.3), 0.25);
  EXPECT_THROW(edge_markovian_stationary_density(0.0, 0.0),
               PreconditionError);
}

TEST(Markovian, ZeroBirthZeroDeathFreezesGraph) {
  MarkovianConfig cfg;
  cfg.nodes = 10;
  cfg.birth = 0.0;
  cfg.death = 0.0;
  cfg.initial = 0.4;
  cfg.rounds = 5;
  cfg.seed = 9;
  GraphSequence seq = make_edge_markovian_trace(cfg);
  for (Round r = 1; r < 5; ++r) {
    EXPECT_TRUE(seq.graph_at(r) == seq.graph_at(0));
  }
}

TEST(Markovian, DeathOneClearsEdges) {
  MarkovianConfig cfg;
  cfg.nodes = 10;
  cfg.birth = 0.0;
  cfg.death = 1.0;
  cfg.initial = 1.0;
  cfg.rounds = 3;
  cfg.seed = 9;
  GraphSequence seq = make_edge_markovian_trace(cfg);
  EXPECT_EQ(seq.graph_at(0).edge_count(), 45u);
  EXPECT_EQ(seq.graph_at(1).edge_count(), 0u);
}

TEST(Markovian, DensityApproachesStationary) {
  MarkovianConfig cfg;
  cfg.nodes = 40;
  cfg.birth = 0.2;
  cfg.death = 0.2;
  cfg.initial = 0.0;
  cfg.rounds = 60;
  cfg.seed = 17;
  GraphSequence seq = make_edge_markovian_trace(cfg);
  const double total = 40.0 * 39.0 / 2.0;
  const double density =
      static_cast<double>(seq.graph_at(59).edge_count()) / total;
  EXPECT_NEAR(density, 0.5, 0.1);
}

TEST(Mobility, TraceHasRequestedShape) {
  MobilityConfig cfg;
  cfg.nodes = 25;
  cfg.rounds = 12;
  cfg.radius = 0.3;
  cfg.seed = 5;
  MobilityTrace trace(cfg);
  EXPECT_EQ(trace.round_count(), 12u);
  EXPECT_EQ(trace.network().node_count(), 25u);
  EXPECT_EQ(trace.positions_at(0).size(), 25u);
  EXPECT_EQ(trace.positions_at(100).size(), 25u);  // clamped
}

TEST(Mobility, PositionsStayInUnitSquare) {
  for (MobilityModel model :
       {MobilityModel::kRandomWaypoint, MobilityModel::kRandomWalk}) {
    MobilityConfig cfg;
    cfg.nodes = 15;
    cfg.rounds = 50;
    cfg.model = model;
    cfg.min_speed = 0.05;
    cfg.max_speed = 0.2;  // big steps exercise boundary reflection
    cfg.seed = 21;
    MobilityTrace trace(cfg);
    for (Round r = 0; r < 50; ++r) {
      for (const auto& p : trace.positions_at(r)) {
        EXPECT_GE(p.x, 0.0);
        EXPECT_LE(p.x, 1.0);
        EXPECT_GE(p.y, 0.0);
        EXPECT_LE(p.y, 1.0);
      }
    }
  }
}

TEST(Mobility, NodesActuallyMove) {
  MobilityConfig cfg;
  cfg.nodes = 5;
  cfg.rounds = 20;
  cfg.min_speed = 0.01;
  cfg.max_speed = 0.02;
  cfg.seed = 2;
  MobilityTrace trace(cfg);
  const auto& p0 = trace.positions_at(0);
  const auto& p19 = trace.positions_at(19);
  bool moved = false;
  for (std::size_t i = 0; i < 5; ++i) {
    if (p0[i].x != p19[i].x || p0[i].y != p19[i].y) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(Mobility, GraphMatchesPositions) {
  MobilityConfig cfg;
  cfg.nodes = 10;
  cfg.rounds = 5;
  cfg.radius = 0.4;
  cfg.seed = 33;
  MobilityTrace trace(cfg);
  for (Round r = 0; r < 5; ++r) {
    const Graph expected = gen::geometric(trace.positions_at(r), 0.4);
    EXPECT_TRUE(trace.network().graph_at(r) == expected);
  }
}

TEST(Interval, StableSubgraphIsIntersection) {
  std::vector<Graph> rounds;
  rounds.push_back(Graph(3, {{0, 1}, {1, 2}}));
  rounds.push_back(Graph(3, {{1, 2}, {0, 2}}));
  GraphSequence seq(std::move(rounds));
  const Graph stable = stable_subgraph(seq, 0, 2);
  EXPECT_EQ(stable.edge_count(), 1u);
  EXPECT_TRUE(stable.has_edge(1, 2));
}

TEST(Interval, OneIntervalConnectivity) {
  std::vector<Graph> rounds;
  rounds.push_back(gen::path(4));
  rounds.push_back(gen::ring(4));
  GraphSequence ok(std::move(rounds));
  EXPECT_TRUE(is_one_interval_connected(ok, 2));

  std::vector<Graph> bad;
  bad.push_back(gen::path(4));
  bad.push_back(Graph(4, {{0, 1}}));
  GraphSequence broken(std::move(bad));
  EXPECT_FALSE(is_one_interval_connected(broken, 2));
}

TEST(Interval, TIntervalDetectsSlidingViolation) {
  // Rounds 0,1 share a spanning path; rounds 1,2 share nothing connected.
  std::vector<Graph> rounds;
  rounds.push_back(gen::path(3));                 // 0-1, 1-2
  rounds.push_back(gen::path(3));                 // 0-1, 1-2
  rounds.push_back(Graph(3, {{0, 2}, {0, 1}}));   // different edges
  GraphSequence seq(std::move(rounds));
  EXPECT_TRUE(is_t_interval_connected(seq, 3, 1));
  EXPECT_FALSE(is_t_interval_connected(seq, 3, 2));
}

TEST(Interval, MaxIntervalConnectivity) {
  // A static connected graph is T-interval connected for any T.
  std::vector<Graph> rounds(6, gen::ring(5));
  GraphSequence stable(std::move(rounds));
  EXPECT_EQ(max_interval_connectivity(stable, 6), 6u);

  std::vector<Graph> flip;
  for (int i = 0; i < 6; ++i) {
    flip.push_back(i % 2 == 0 ? Graph(3, {{0, 1}, {1, 2}})
                              : Graph(3, {{0, 2}, {2, 1}}));
  }
  GraphSequence alternating(std::move(flip));
  // Consecutive rounds share only edge {1,2}: not spanning-connected.
  EXPECT_EQ(max_interval_connectivity(alternating, 6), 1u);
}

TEST(Interval, DisconnectedRoundGivesZero) {
  std::vector<Graph> rounds;
  rounds.push_back(Graph(3, {{0, 1}}));
  GraphSequence seq(std::move(rounds));
  EXPECT_EQ(max_interval_connectivity(seq, 1), 0u);
}

TEST(Interval, BadArgumentsThrow) {
  GraphSequence seq({gen::path(3)});
  EXPECT_THROW(is_t_interval_connected(seq, 1, 0), PreconditionError);
  EXPECT_THROW(is_t_interval_connected(seq, 1, 2), PreconditionError);
}

}  // namespace
}  // namespace hinet
