// TVG model, journeys, temporal metrics, and the dynamic diameter.
#include "graph/tvg.hpp"

#include <gtest/gtest.h>

#include "graph/adversary.hpp"
#include "graph/generators.hpp"

namespace hinet {
namespace {

TEST(Tvg, PresenceIntervalsMerge) {
  Tvg tvg(3, 10);
  tvg.add_presence(0, 1, 2, 4);
  tvg.add_presence(0, 1, 3, 6);  // overlaps -> [2, 6)
  tvg.add_presence(0, 1, 8, 9);
  const auto ivals = tvg.presence_of(0, 1);
  ASSERT_EQ(ivals.size(), 2u);
  EXPECT_EQ(ivals[0], (PresenceInterval{2, 6}));
  EXPECT_EQ(ivals[1], (PresenceInterval{8, 9}));
  EXPECT_TRUE(tvg.present(0, 1, 5));
  EXPECT_TRUE(tvg.present(1, 0, 5));  // undirected
  EXPECT_FALSE(tvg.present(0, 1, 6));
  EXPECT_FALSE(tvg.present(0, 2, 5));
}

TEST(Tvg, AdjacentIntervalsMergeToo) {
  Tvg tvg(2, 10);
  tvg.add_presence(0, 1, 0, 3);
  tvg.add_presence(0, 1, 3, 5);
  ASSERT_EQ(tvg.presence_of(0, 1).size(), 1u);
  EXPECT_EQ(tvg.presence_of(0, 1)[0], (PresenceInterval{0, 5}));
}

TEST(Tvg, RejectsBadIntervals) {
  Tvg tvg(2, 10);
  EXPECT_THROW(tvg.add_presence(0, 1, 4, 4), PreconditionError);
  EXPECT_THROW(tvg.add_presence(0, 1, 4, 11), PreconditionError);
  EXPECT_THROW(tvg.add_presence(0, 0, 1, 2), PreconditionError);
}

TEST(Tvg, SnapshotMatchesPresence) {
  Tvg tvg(3, 5);
  tvg.add_presence(0, 1, 0, 2);
  tvg.add_presence(1, 2, 1, 5);
  const Graph s0 = tvg.snapshot(0);
  EXPECT_TRUE(s0.has_edge(0, 1));
  EXPECT_FALSE(s0.has_edge(1, 2));
  const Graph s1 = tvg.snapshot(1);
  EXPECT_TRUE(s1.has_edge(0, 1));
  EXPECT_TRUE(s1.has_edge(1, 2));
  const Graph s3 = tvg.snapshot(3);
  EXPECT_FALSE(s3.has_edge(0, 1));
}

TEST(Tvg, SequenceRoundTrip) {
  AdversaryConfig cfg;
  cfg.nodes = 12;
  cfg.interval = 3;
  cfg.rounds = 9;
  cfg.churn_edges = 4;
  cfg.seed = 6;
  GraphSequence seq = make_t_interval_trace(cfg);
  Tvg tvg = Tvg::from_sequence(seq, 9);
  GraphSequence back = tvg.to_sequence();
  ASSERT_EQ(back.round_count(), 9u);
  for (Round r = 0; r < 9; ++r) {
    EXPECT_TRUE(back.graph_at(r) == seq.graph_at(r)) << "round " << r;
  }
}

TEST(Tvg, ForemostArrivalWaitsForEdges) {
  // 0-1 present early, 1-2 only later: the journey must wait at node 1.
  Tvg tvg(3, 10);
  tvg.add_presence(0, 1, 0, 2);
  tvg.add_presence(1, 2, 5, 7);
  const auto arrival = tvg.foremost_arrival(0, 0);
  EXPECT_EQ(arrival[0], 0u);
  EXPECT_EQ(arrival[1], 1u);
  EXPECT_EQ(arrival[2], 6u);  // departs at 5, unit latency
}

TEST(Tvg, JourneysAreTimeRespecting) {
  // 1-2 exists only BEFORE 0-1 appears: 2 must be unreachable from 0.
  Tvg tvg(3, 10);
  tvg.add_presence(1, 2, 0, 2);
  tvg.add_presence(0, 1, 5, 7);
  const auto arrival = tvg.foremost_arrival(0, 0);
  EXPECT_EQ(arrival[1], 6u);
  EXPECT_EQ(arrival[2], Tvg::kUnreachable);
  EXPECT_FALSE(tvg.reachable(0, 2, 0));
  EXPECT_TRUE(tvg.reachable(1, 2, 0));
}

TEST(Tvg, LatencyMustFitInsidePresence) {
  Tvg tvg(2, 10);
  tvg.add_presence(0, 1, 0, 3);
  tvg.set_latency([](const Edge&, Round) { return std::size_t{5}; });
  // Crossing takes 5 rounds but the edge lives only 3: no journey.
  EXPECT_FALSE(tvg.reachable(0, 1, 0));
  tvg.add_presence(0, 1, 3, 9);  // merged into [0, 9): crossing now fits
  EXPECT_TRUE(tvg.reachable(0, 1, 0));
  EXPECT_EQ(tvg.foremost_arrival(0, 0)[1], 5u);
}

TEST(Tvg, StartTimeShiftsJourneys) {
  Tvg tvg(2, 10);
  tvg.add_presence(0, 1, 2, 4);
  EXPECT_TRUE(tvg.reachable(0, 1, 0));
  EXPECT_TRUE(tvg.reachable(0, 1, 3));
  EXPECT_FALSE(tvg.reachable(0, 1, 4));  // edge already gone
}

TEST(Tvg, TemporalEccentricityAndDiameter) {
  // Static path 0-1-2 for the whole lifetime.
  Tvg tvg(3, 10);
  tvg.add_presence(0, 1, 0, 10);
  tvg.add_presence(1, 2, 0, 10);
  EXPECT_EQ(tvg.temporal_eccentricity(0, 0), std::optional<Round>(2));
  EXPECT_EQ(tvg.temporal_eccentricity(1, 0), std::optional<Round>(1));
  EXPECT_EQ(tvg.temporal_diameter(0), std::optional<Round>(2));
}

TEST(Tvg, TemporalDiameterUnreachableIsNullopt) {
  Tvg tvg(3, 5);
  tvg.add_presence(0, 1, 0, 5);
  EXPECT_EQ(tvg.temporal_diameter(0), std::nullopt);
}

TEST(CausalArrival, OneHopPerRound) {
  StaticNetwork net(gen::path(4));
  const auto arrival = causal_arrival(net, 0, 0, 10);
  EXPECT_EQ(arrival[0], 0u);
  EXPECT_EQ(arrival[1], 1u);
  EXPECT_EQ(arrival[2], 2u);
  EXPECT_EQ(arrival[3], 3u);
}

TEST(CausalArrival, HorizonLimits) {
  StaticNetwork net(gen::path(4));
  const auto arrival = causal_arrival(net, 0, 0, 2);
  EXPECT_EQ(arrival[2], 2u);
  EXPECT_EQ(arrival[3], kNeverReached);
}

TEST(CausalArrival, UsesTheRoundGraphs) {
  // Edge 0-1 only in round 0; edge 1-2 only in round 1.
  std::vector<Graph> rounds;
  rounds.push_back(Graph(3, {{0, 1}}));
  rounds.push_back(Graph(3, {{1, 2}}));
  rounds.push_back(Graph(3));
  GraphSequence net(std::move(rounds));
  const auto arrival = causal_arrival(net, 0, 0, 3);
  EXPECT_EQ(arrival[1], 1u);
  EXPECT_EQ(arrival[2], 2u);
  // Starting at round 1, the 0-1 edge is already gone.
  const auto late = causal_arrival(net, 0, 1, 2);
  EXPECT_EQ(late[1], kNeverReached);
}

TEST(DynamicDiameter, StaticGraphMatchesDiameter) {
  std::vector<Graph> rounds(8, gen::path(5));
  GraphSequence net(std::move(rounds));
  EXPECT_EQ(dynamic_diameter(net, 8), std::optional<std::size_t>(4));
}

TEST(DynamicDiameter, SingleNodeIsZero) {
  StaticNetwork net(Graph(1));
  EXPECT_EQ(dynamic_diameter(net, 3), std::optional<std::size_t>(0));
}

TEST(DynamicDiameter, DisconnectedTraceHasNone) {
  StaticNetwork net(Graph(3));
  EXPECT_EQ(dynamic_diameter(net, 5), std::nullopt);
}

TEST(DynamicDiameter, DynamicsCanBeatStaticDiameter) {
  // Alternating stars centred at 0: any node reaches all others within 2
  // rounds even though each snapshot is a star (diameter 2).  The dynamic
  // diameter of a 1-interval connected trace is at most n-1 (O'Dell &
  // Wattenhofer); here it should be small.
  std::vector<Graph> rounds(10, gen::star(6));
  GraphSequence net(std::move(rounds));
  const auto d = dynamic_diameter(net, 10);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 2u);
}

TEST(DynamicDiameter, AdversarialTraceBoundedByNMinusOne) {
  AdversaryConfig cfg;
  cfg.nodes = 10;
  cfg.interval = 1;
  cfg.rounds = 30;
  cfg.churn_edges = 0;
  cfg.seed = 4;
  GraphSequence net = make_t_interval_trace(cfg);
  const auto d = dynamic_diameter(net, 30);
  ASSERT_TRUE(d.has_value());
  EXPECT_LE(*d, 9u);  // n-1 bound for 1-interval connected traces
}

}  // namespace
}  // namespace hinet
