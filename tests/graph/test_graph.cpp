#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hinet {
namespace {

TEST(Edge, CanonicalOrder) {
  const Edge e = make_edge(5, 2);
  EXPECT_EQ(e.u, 2u);
  EXPECT_EQ(e.v, 5u);
  EXPECT_THROW(make_edge(3, 3), PreconditionError);
}

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.diameter(), 0);
}

TEST(Graph, AddRemoveEdges) {
  Graph g(4);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));  // duplicate, either orientation
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, SelfLoopRejected) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), PreconditionError);
}

TEST(Graph, OutOfRangeRejected) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3), PreconditionError);
  EXPECT_THROW(g.has_edge(9, 0), PreconditionError);
}

TEST(Graph, NeighborsAreSorted) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto n = g.neighbors(2);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0], 0u);
  EXPECT_EQ(n[1], 3u);
  EXPECT_EQ(n[2], 4u);
  EXPECT_EQ(g.degree(2), 3u);
}

TEST(Graph, EdgeListSorted) {
  Graph g(4, {{2, 3}, {0, 1}, {0, 2}});
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[1], (Edge{0, 2}));
  EXPECT_EQ(edges[2], (Edge{2, 3}));
}

TEST(Graph, BfsDistancesOnPath) {
  Graph g(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto d = g.distances_from(0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(d[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(g.distance(0, 4), 4);
  EXPECT_EQ(g.distance(4, 0), 4);
}

TEST(Graph, UnreachableDistanceIsMinusOne) {
  Graph g(4, {{0, 1}});
  EXPECT_EQ(g.distance(0, 3), -1);
  const auto d = g.distances_from(0);
  EXPECT_EQ(d[2], -1);
}

TEST(Graph, ConnectivityDetection) {
  Graph g(4, {{0, 1}, {1, 2}});
  EXPECT_FALSE(g.is_connected());
  g.add_edge(2, 3);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, SingleNodeConnected) {
  EXPECT_TRUE(Graph(1).is_connected());
}

TEST(Graph, ConnectedSubsetChecksInducedEdgesOnly) {
  // 0-1-2 path; subset {0, 2} is NOT connected without node 1.
  Graph g(3, {{0, 1}, {1, 2}});
  const std::vector<NodeId> both_ends{0, 2};
  EXPECT_FALSE(g.is_connected_subset(both_ends));
  const std::vector<NodeId> all{0, 1, 2};
  EXPECT_TRUE(g.is_connected_subset(all));
  const std::vector<NodeId> empty;
  EXPECT_TRUE(g.is_connected_subset(empty));
  const std::vector<NodeId> one{2};
  EXPECT_TRUE(g.is_connected_subset(one));
}

TEST(Graph, ComponentsLabeling) {
  Graph g(5, {{0, 1}, {3, 4}});
  const auto c = g.components();
  EXPECT_EQ(c[0], c[1]);
  EXPECT_EQ(c[3], c[4]);
  EXPECT_NE(c[0], c[2]);
  EXPECT_NE(c[0], c[3]);
  EXPECT_NE(c[2], c[3]);
}

TEST(Graph, DiameterOfPathAndCycle) {
  Graph path(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(path.diameter(), 3);
  Graph cycle(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(cycle.diameter(), 2);
  Graph disconnected(3, {{0, 1}});
  EXPECT_EQ(disconnected.diameter(), -1);
}

TEST(Graph, IntersectionAndUnion) {
  Graph a(4, {{0, 1}, {1, 2}, {2, 3}});
  Graph b(4, {{1, 2}, {2, 3}, {0, 3}});
  const Graph inter = Graph::intersection(a, b);
  EXPECT_EQ(inter.edge_count(), 2u);
  EXPECT_TRUE(inter.has_edge(1, 2));
  EXPECT_TRUE(inter.has_edge(2, 3));
  const Graph uni = Graph::union_of(a, b);
  EXPECT_EQ(uni.edge_count(), 4u);
  EXPECT_TRUE(uni.has_edge(0, 3));
}

TEST(Graph, IntersectionNodeCountMismatchThrows) {
  EXPECT_THROW(Graph::intersection(Graph(3), Graph(4)), PreconditionError);
}

TEST(Graph, ContainsSubgraph) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  Graph sub(4, {{1, 2}});
  EXPECT_TRUE(g.contains_subgraph(sub));
  sub.add_edge(0, 3);
  EXPECT_FALSE(g.contains_subgraph(sub));
}

TEST(Graph, EqualityIsStructural) {
  Graph a(3, {{0, 1}});
  Graph b(3);
  b.add_edge(1, 0);
  EXPECT_TRUE(a == b);
}

TEST(RestrictedDistances, HonorsMask) {
  // Path 0-1-2-3; forbid node 1: 0 cannot reach 2.
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  std::vector<char> mask{1, 0, 1, 1};
  const auto d = restricted_distances(g, 0, mask);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], -1);
  EXPECT_EQ(d[2], -1);
  EXPECT_EQ(d[3], -1);
}

TEST(RestrictedDistances, SourceOutsideMaskIsAllUnreachable) {
  Graph g(3, {{0, 1}, {1, 2}});
  std::vector<char> mask{0, 1, 1};
  const auto d = restricted_distances(g, 0, mask);
  EXPECT_EQ(d[0], -1);
  EXPECT_EQ(d[1], -1);
}

TEST(RestrictedDistances, MaskSizeMismatchThrows) {
  Graph g(3);
  std::vector<char> mask{1, 1};
  EXPECT_THROW(restricted_distances(g, 0, mask), PreconditionError);
}

TEST(GraphProperty, IntersectionIsSubgraphOfBoth) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Graph a(20);
    Graph b(20);
    for (int e = 0; e < 40; ++e) {
      const auto x = static_cast<NodeId>(rng.below(20));
      const auto y = static_cast<NodeId>(rng.below(20));
      if (x == y) continue;
      if (rng.bernoulli(0.5)) a.add_edge(x, y);
      if (rng.bernoulli(0.5)) b.add_edge(x, y);
    }
    const Graph inter = Graph::intersection(a, b);
    EXPECT_TRUE(a.contains_subgraph(inter));
    EXPECT_TRUE(b.contains_subgraph(inter));
    const Graph uni = Graph::union_of(a, b);
    EXPECT_TRUE(uni.contains_subgraph(a));
    EXPECT_TRUE(uni.contains_subgraph(b));
  }
}

}  // namespace
}  // namespace hinet
