// Corruption fuzz for the results-store on-disk formats.
//
// Same split of policies as the snapshot/journal fuzz suite
// (tests/sim/test_snapshot_fuzz.cpp), applied to the service formats:
// the index and the segments are all-or-nothing (any truncation, bit flip,
// version skew or foreign header is a typed IoError — a torn result must
// never be served), while the WAL and the job queue are salvage-the-prefix
// (per-record CRC framing; corruption is treated as a crash tail, the
// intact prefix survives).  Every mutation must produce a typed exception
// or a clean salvage — never UB; the CI ASan job runs this suite (label:
// service) to enforce that byte by byte.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/scenarios.hpp"
#include "service/framed_log.hpp"
#include "service/job_queue.hpp"
#include "service/results_store.hpp"
#include "util/binary_io.hpp"

namespace hinet {
namespace {

JobSpec tiny_spec() {
  JobSpec spec;
  spec.scenario = Scenario::kHiNetOne;
  spec.config.nodes = 12;
  spec.config.heads = 3;
  spec.config.k = 3;
  spec.config.alpha = 2;
  spec.config.hop_l = 2;
  spec.base_seed = 7;
  spec.repetitions = 1;
  return spec;
}

std::string fresh_dir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "hinet_storefuzz_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

/// A store directory holding one published tiny job.
std::string make_populated_store(const char* tag) {
  const std::string dir = fresh_dir(tag);
  ResultsStore store(dir);
  const JobSpec spec = tiny_spec();
  store.publish(spec,
                run_replicates(scenario_factory(spec.scenario, spec.config),
                               spec.repetitions, spec.base_seed, 1));
  return dir;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(f),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

/// Opening the store (or loading the job) with a corrupt all-or-nothing
/// artifact must throw IoError — from the constructor (index) or from
/// load (segment) — and must never serve a partial result.
void expect_rejected(const std::string& dir) {
  try {
    ResultsStore store(dir);
    const std::optional<StoredResult> got = store.load(tiny_spec());
    if (got.has_value()) {
      // Serving is only acceptable if the bytes are fully intact, which
      // the callers below rule out by construction.
      FAIL() << "corrupt artifact was served as a full result";
    } else {
      FAIL() << "corrupt artifact degraded to a silent miss";
    }
  } catch (const IoError&) {
    // expected: typed refusal
  }
}

// ── Segments: all-or-nothing ────────────────────────────────────────────

TEST(StoreFuzz, EveryTruncationOfTheSegmentIsRejected) {
  const std::string dir = make_populated_store("seg_trunc");
  ResultsStore probe(dir);
  const std::string seg = probe.segment_path(tiny_spec().content_hash());
  const std::vector<std::uint8_t> good = read_file(seg);
  ASSERT_GT(good.size(), 18u);

  for (std::size_t len = 0; len < good.size(); ++len) {
    write_file(seg, {good.begin(),
                     good.begin() + static_cast<std::ptrdiff_t>(len)});
    expect_rejected(dir);
  }
  write_file(seg, good);
  ResultsStore healed(dir);
  EXPECT_TRUE(healed.load(tiny_spec()).has_value());
}

TEST(StoreFuzz, EveryBitFlipInTheSegmentIsRejected) {
  const std::string dir = make_populated_store("seg_flip");
  ResultsStore probe(dir);
  const std::string seg = probe.segment_path(tiny_spec().content_hash());
  const std::vector<std::uint8_t> good = read_file(seg);

  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    std::vector<std::uint8_t> bad = good;
    bad[byte] ^= 0x01;
    write_file(seg, bad);
    expect_rejected(dir);
  }
}

TEST(StoreFuzz, SegmentVersionSkewAndForeignHeaderAreRefused) {
  const std::string dir = make_populated_store("seg_ver");
  ResultsStore probe(dir);
  const std::string seg = probe.segment_path(tiny_spec().content_hash());
  const std::vector<std::uint8_t> good = read_file(seg);

  // A file that is wholesale something else (a journal, say) is refused.
  std::vector<std::uint8_t> foreign = good;
  foreign[0] ^= 0xff;
  write_file(seg, foreign);
  expect_rejected(dir);

  // The version field lives after the magic; CRC or the version check
  // catches the skew either way — what matters is the typed refusal.
  std::vector<std::uint8_t> skew = good;
  skew[4] ^= 0xff;
  write_file(seg, skew);
  expect_rejected(dir);
}

// ── Index: all-or-nothing ───────────────────────────────────────────────

TEST(StoreFuzz, EveryTruncationOfTheIndexIsRejected) {
  const std::string dir = make_populated_store("idx_trunc");
  const std::string index = dir + "/index.hix";
  const std::vector<std::uint8_t> good = read_file(index);
  ASSERT_GT(good.size(), 18u);

  // Truncating to zero bytes is the one shape rename-atomicity can never
  // produce, and an absent/empty index simply means "no jobs yet" — start
  // at 1.
  for (std::size_t len = 1; len < good.size(); ++len) {
    write_file(index, {good.begin(),
                       good.begin() + static_cast<std::ptrdiff_t>(len)});
    EXPECT_THROW(ResultsStore{dir}, IoError) << "truncated to " << len;
  }
  write_file(index, good);
  ResultsStore healed(dir);
  EXPECT_TRUE(healed.contains(tiny_spec()));
}

TEST(StoreFuzz, EveryBitFlipInTheIndexIsRejected) {
  const std::string dir = make_populated_store("idx_flip");
  const std::string index = dir + "/index.hix";
  const std::vector<std::uint8_t> good = read_file(index);

  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    std::vector<std::uint8_t> bad = good;
    bad[byte] ^= 0x01;
    write_file(index, bad);
    EXPECT_THROW(ResultsStore{dir}, IoError) << "flip at byte " << byte;
  }
}

// ── WAL: salvage-the-prefix ─────────────────────────────────────────────

TEST(StoreFuzz, TornWalTailIsSalvagedAndCounted) {
  // Leave an unresolved intent (crash between intent and segment), then
  // shear bytes off the WAL tail: recovery still works from whatever
  // intact prefix remains, and salvaged bytes are accounted.
  const std::string dir = fresh_dir("wal_tear");
  const JobSpec spec = tiny_spec();
  struct Crash {};
  {
    ResultsStore store(dir);
    store.set_commit_hook([](ResultsStore::CommitStage s) {
      if (s == ResultsStore::CommitStage::kIntentLogged) throw Crash{};
    });
    EXPECT_THROW(
        store.publish(spec, run_replicates(
                                scenario_factory(spec.scenario, spec.config),
                                spec.repetitions, spec.base_seed, 1)),
        Crash);
  }
  const std::string wal = dir + "/wal.hwl";
  const std::vector<std::uint8_t> good = read_file(wal);
  ASSERT_GT(good.size(), 8u);  // header + one intent record

  // len == 8 is the record boundary right after the header (a clean,
  // empty log) — start past it so every shear leaves a genuine torn tail.
  for (std::size_t len = 9; len < good.size(); ++len) {
    write_file(wal, {good.begin(),
                     good.begin() + static_cast<std::ptrdiff_t>(len)});
    ResultsStore recovered(dir);
    // The sheared intent is torn away — nothing to resolve, a clean miss.
    EXPECT_FALSE(recovered.load(spec).has_value());
    EXPECT_GT(recovered.counters().salvaged_wal_bytes, 0u)
        << "shear at " << len;
    // Recovery compacts the WAL; the next iteration re-tears the original.
  }
}

TEST(StoreFuzz, ForeignWalHeaderIsRefusedNotSalvaged) {
  const std::string dir = make_populated_store("wal_foreign");
  const std::string wal = dir + "/wal.hwl";
  std::vector<std::uint8_t> bytes = read_file(wal);
  ASSERT_GE(bytes.size(), 8u);
  bytes[0] ^= 0xff;
  write_file(wal, bytes);
  EXPECT_THROW(ResultsStore{dir}, IoError);
}

// ── Job queue: salvage-the-prefix ───────────────────────────────────────

TEST(StoreFuzz, TornQueueTailIsSalvaged) {
  const std::string dir = fresh_dir("queue_tear");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/queue.hjq";
  {
    JobQueue queue(path, 8);
    JobSpec a = tiny_spec();
    JobSpec b = tiny_spec();
    b.base_seed = 100;
    queue.submit(a);
    queue.submit(b);
    EXPECT_EQ(queue.pending(), 2u);
  }
  const std::vector<std::uint8_t> good = read_file(path);
  ASSERT_GT(good.size(), 8u);

  for (std::size_t len = 8; len < good.size(); ++len) {
    write_file(path, {good.begin(),
                      good.begin() + static_cast<std::ptrdiff_t>(len)});
    JobQueue salvaged(path, 8);
    EXPECT_LE(salvaged.pending(), 2u);
    // The queue auto-compacts at open, so re-tear from the original.
  }

  write_file(path, good);
  JobQueue intact(path, 8);
  EXPECT_EQ(intact.pending(), 2u);
}

TEST(StoreFuzz, QueueVersionSkewAndForeignHeaderAreRefused) {
  const std::string dir = fresh_dir("queue_foreign");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/queue.hjq";
  {
    JobQueue queue(path, 8);
    queue.submit(tiny_spec());
  }
  const std::vector<std::uint8_t> good = read_file(path);

  std::vector<std::uint8_t> foreign = good;
  foreign[0] ^= 0xff;  // file magic
  write_file(path, foreign);
  EXPECT_THROW((JobQueue{path, 8}), IoError);

  std::vector<std::uint8_t> skew = good;
  skew[4] ^= 0xff;  // version
  write_file(path, skew);
  EXPECT_THROW((JobQueue{path, 8}), IoError);
}

// ── FramedLog bit flips: anywhere past the header degrade to a tail ─────

TEST(StoreFuzz, FramedLogBitFlipsSalvageThePrefix) {
  const std::string dir = fresh_dir("framed_flip");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/log.bin";
  {
    FramedLog log(path, 0x31'31'31'31u, 1, 0x32'32'32'32u, "fuzz log");
    for (std::uint8_t i = 0; i < 4; ++i) {
      const std::vector<std::uint8_t> payload(16, i);
      log.append(payload);
    }
  }
  const std::vector<std::uint8_t> good = read_file(path);
  ASSERT_GT(good.size(), 8u);

  for (std::size_t byte = 8; byte < good.size(); ++byte) {
    std::vector<std::uint8_t> bad = good;
    bad[byte] ^= 0x01;
    write_file(path, bad);
    FramedLog salvaged(path, 0x31'31'31'31u, 1, 0x32'32'32'32u, "fuzz log");
    EXPECT_LT(salvaged.records().size(), 4u) << "flip at byte " << byte;
    EXPECT_GT(salvaged.dropped_bytes(), 0u) << "flip at byte " << byte;
  }
}

}  // namespace
}  // namespace hinet
