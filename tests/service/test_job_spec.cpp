// JobSpec canonical encoding and content addressing.
//
// The content hash is the identity of a job everywhere — queue dedupe,
// store segments, journal file names, `hinetd query --hash=` — so the
// canonical byte encoding must be stable across processes and versions
// (golden hash test), injective over every spec field (sensitivity tests),
// and strict on decode (version skew and unknown enum codes are refused,
// never guessed).
#include "service/job_spec.hpp"

#include <gtest/gtest.h>

#include "util/binary_io.hpp"

namespace hinet {
namespace {

JobSpec tiny_spec() {
  JobSpec spec;
  spec.scenario = Scenario::kHiNetOne;
  spec.config.nodes = 24;
  spec.config.heads = 4;
  spec.config.k = 3;
  spec.config.alpha = 2;
  spec.config.hop_l = 2;
  spec.base_seed = 7;
  spec.repetitions = 3;
  return spec;
}

TEST(JobSpec, CanonicalBytesRoundTrip) {
  const JobSpec spec = tiny_spec();
  const std::vector<std::uint8_t> bytes = spec.canonical_bytes();
  ByteReader r(bytes, "test spec");
  const JobSpec back = decode_job_spec(r);
  r.expect_done();
  EXPECT_TRUE(back == spec);
  EXPECT_EQ(back.canonical_bytes(), bytes);
  EXPECT_EQ(back.content_hash(), spec.content_hash());
}

// Pins the canonical encoding across builds: if this golden moves, every
// existing store and queue file silently stops matching its contents.
// Bump kSpecEncodingVersion instead of updating the constant casually.
TEST(JobSpec, GoldenContentHashIsStable) {
  EXPECT_EQ(tiny_spec().hash_hex(), "75eb5eada5c37819");
}

TEST(JobSpec, EveryFieldChangesTheHash) {
  const JobSpec base = tiny_spec();
  const auto differs = [&base](JobSpec changed) {
    EXPECT_NE(changed.content_hash(), base.content_hash());
    EXPECT_FALSE(changed == base);
  };
  JobSpec s;

  s = base; s.scenario = Scenario::kKloOne;            differs(s);
  s = base; s.config.nodes = 25;                       differs(s);
  s = base; s.config.heads = 5;                        differs(s);
  s = base; s.config.k = 4;                            differs(s);
  s = base; s.config.alpha = 3;                        differs(s);
  s = base; s.config.hop_l = 3;                        differs(s);
  s = base; s.config.reaffiliation_prob = 0.25;        differs(s);
  s = base; s.config.churn_edges = 9;                  differs(s);
  s = base; s.config.assignment = AssignmentMode::kRoundRobin; differs(s);
  s = base; s.config.run_full_schedule = false;        differs(s);
  s = base; s.base_seed = 8;                           differs(s);
  s = base; s.repetitions = 4;                         differs(s);
}

TEST(JobSpec, DecodeRefusesVersionSkew) {
  std::vector<std::uint8_t> bytes = tiny_spec().canonical_bytes();
  bytes[0] ^= 0xff;  // the leading u16 is the encoding version
  ByteReader r(bytes, "skewed spec");
  EXPECT_THROW(decode_job_spec(r), IoError);
}

TEST(JobSpec, DecodeRefusesUnknownScenarioCode) {
  std::vector<std::uint8_t> bytes = tiny_spec().canonical_bytes();
  bytes[2] = 0x7f;  // scenario code follows the version
  ByteReader r(bytes, "bad scenario");
  EXPECT_THROW(decode_job_spec(r), IoError);
}

TEST(JobSpec, ParseHashHex) {
  EXPECT_EQ(parse_hash_hex("75eb5eada5c37819"), tiny_spec().content_hash());
  EXPECT_EQ(parse_hash_hex("0000000000000000"), 0u);
  EXPECT_THROW(parse_hash_hex(""), std::invalid_argument);
  EXPECT_THROW(parse_hash_hex("75eb"), std::invalid_argument);
  EXPECT_THROW(parse_hash_hex("75eb5eada5c3781x"), std::invalid_argument);
  EXPECT_THROW(parse_hash_hex("75eb5eada5c378190"), std::invalid_argument);
}

TEST(JobSpec, DescribeNamesTheScenario) {
  EXPECT_NE(tiny_spec().describe().find("hinet-one"), std::string::npos);
}

TEST(JobSpec, ScenarioCliNamesRoundTrip) {
  for (const Scenario s : all_scenarios()) {
    const std::optional<Scenario> back =
        scenario_from_cli_name(scenario_cli_name(s));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(scenario_from_cli_name("not-a-scenario").has_value());
}

}  // namespace
}  // namespace hinet
