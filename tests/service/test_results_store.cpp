// ResultsStore: publish/load round-trip, the staged commit protocol under
// fault injection, and handle poisoning.
//
// The central property is full-or-miss: a crash at ANY stage boundary of
// publish() followed by a reopen must leave the store serving either the
// complete result (roll-forward — the segment was fully durable) or a
// clean miss (roll-back — it was not), never a torn result and never a
// state that makes the job re-execute after it was durably published.
// The fault injector here throws from the commit hook at every boundary —
// the same states a kill -9 leaves behind, which the CI smoke exercises
// with a real _Exit through hinetd's --crash-at-stage lever.
#include "service/results_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/scenarios.hpp"
#include "service/service.hpp"
#include "util/require.hpp"

namespace hinet {
namespace {

JobSpec tiny_spec(std::uint64_t base_seed = 7, std::uint64_t reps = 2) {
  JobSpec spec;
  spec.scenario = Scenario::kHiNetOne;
  spec.config.nodes = 12;
  spec.config.heads = 3;
  spec.config.k = 3;
  spec.config.alpha = 2;
  spec.config.hop_l = 2;
  spec.base_seed = base_seed;
  spec.repetitions = reps;
  return spec;
}

std::vector<ReplicateResult> run_replicates_for(const JobSpec& spec) {
  return run_replicates(scenario_factory(spec.scenario, spec.config),
                        spec.repetitions, spec.base_seed, 1);
}

std::string fresh_dir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "hinet_store_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ResultsStore, PublishLoadRoundTrip) {
  const std::string dir = fresh_dir("roundtrip");
  const JobSpec spec = tiny_spec();
  const std::vector<ReplicateResult> reps = run_replicates_for(spec);

  ResultsStore store(dir);
  EXPECT_FALSE(store.contains(spec));
  store.publish(spec, reps);
  EXPECT_TRUE(store.contains(spec));
  EXPECT_EQ(store.size(), 1u);

  const std::optional<StoredResult> got = store.load(spec);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->spec == spec);
  ASSERT_EQ(got->replicates.size(), reps.size());
  for (std::size_t i = 0; i < reps.size(); ++i) {
    EXPECT_TRUE(got->replicates[i].metrics == reps[i].metrics)
        << "replicate " << i;
    EXPECT_EQ(got->replicates[i].wall_ms, reps[i].wall_ms);
  }
  EXPECT_EQ(store.counters().hits, 1u);

  // And byte-identically across a reopen.
  ResultsStore reopened(dir);
  const std::optional<StoredResult> again = reopened.load(spec);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(query_digest(*again), query_digest(*got));
  EXPECT_EQ(reopened.counters().recovered_commits, 0u);
  EXPECT_EQ(reopened.counters().rolled_back_intents, 0u);
}

TEST(ResultsStore, MissIsCountedAndReturnsNullopt) {
  ResultsStore store(fresh_dir("miss"));
  EXPECT_FALSE(store.load(tiny_spec()).has_value());
  EXPECT_FALSE(store.load_hash(0xdeadbeefu).has_value());
  EXPECT_EQ(store.counters().misses, 2u);
  EXPECT_EQ(store.counters().hits, 0u);
}

TEST(ResultsStore, RepublishIsRefused) {
  const std::string dir = fresh_dir("republish");
  const JobSpec spec = tiny_spec();
  const std::vector<ReplicateResult> reps = run_replicates_for(spec);
  ResultsStore store(dir);
  store.publish(spec, reps);
  EXPECT_THROW(store.publish(spec, reps), PreconditionError);
}

TEST(ResultsStore, ReplicateCountMustMatchSpec) {
  ResultsStore store(fresh_dir("repcount"));
  const JobSpec spec = tiny_spec();
  std::vector<ReplicateResult> reps = run_replicates_for(spec);
  reps.pop_back();
  EXPECT_THROW(store.publish(spec, reps), PreconditionError);
}

// Crash (exception) at every stage boundary, then reopen: the store must
// recover to full-or-miss with the matching counter, and a subsequent
// publish-or-load cycle must converge on the exact uninterrupted digest.
TEST(ResultsStore, CrashAtEveryCommitStageRecoversFullOrMiss) {
  const JobSpec spec = tiny_spec();
  const std::vector<ReplicateResult> reps = run_replicates_for(spec);

  // The digest an uninterrupted publish serves.
  std::uint64_t expected_digest = 0;
  {
    ResultsStore clean(fresh_dir("crash-clean"));
    clean.publish(spec, reps);
    expected_digest = query_digest(*clean.load(spec));
  }

  struct Case {
    ResultsStore::CommitStage stage;
    bool expect_served;     ///< reopen serves the full result
    bool expect_recovered;  ///< ...because recovery rolled the intent
                            ///< forward (at kCommitLogged the publish was
                            ///< already complete — nothing to recover)
  };
  const Case cases[] = {
      {ResultsStore::CommitStage::kIntentLogged, false, false},
      {ResultsStore::CommitStage::kSegmentWritten, true, true},
      {ResultsStore::CommitStage::kIndexPublished, true, true},
      {ResultsStore::CommitStage::kCommitLogged, true, false},
  };

  struct Crash {};
  for (const Case& c : cases) {
    const std::string dir =
        fresh_dir(("crash-" + std::to_string(static_cast<int>(c.stage))).c_str());
    {
      ResultsStore store(dir);
      store.set_commit_hook([&c](ResultsStore::CommitStage s) {
        if (s == c.stage) throw Crash{};
      });
      EXPECT_THROW(store.publish(spec, reps), Crash);
      // The handle is poisoned: its in-memory view may be ahead of disk.
      EXPECT_THROW(store.load(spec), IoError);
      EXPECT_THROW(store.publish(spec, reps), IoError);
    }

    ResultsStore recovered(dir);
    EXPECT_EQ(recovered.counters().recovered_commits,
              c.expect_recovered ? 1u : 0u)
        << "stage " << static_cast<int>(c.stage);
    EXPECT_EQ(recovered.counters().rolled_back_intents,
              c.expect_served ? 0u : 1u)
        << "stage " << static_cast<int>(c.stage);
    if (c.expect_served) {
      const std::optional<StoredResult> got = recovered.load(spec);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(query_digest(*got), expected_digest);
    } else {
      EXPECT_FALSE(recovered.load(spec).has_value()) << "clean miss expected";
    }

    // Recovery is terminal: a second reopen finds nothing left to do.
    ResultsStore again(dir);
    EXPECT_EQ(again.counters().recovered_commits, 0u);
    EXPECT_EQ(again.counters().rolled_back_intents, 0u);
    EXPECT_EQ(again.contains(spec), c.expect_served);

    if (!c.expect_served) {
      // The rolled-back job simply re-executes; the retried publish
      // converges on the uninterrupted digest.
      again.publish(spec, reps);
      EXPECT_EQ(query_digest(*again.load(spec)), expected_digest);
    }
  }
}

TEST(ResultsStore, CommitHookAtCommitLoggedLeavesStoreServing) {
  // A crash after the final stage is indistinguishable from success.
  const std::string dir = fresh_dir("after-commit");
  const JobSpec spec = tiny_spec();
  ResultsStore store(dir);
  store.publish(spec, run_replicates_for(spec));

  ResultsStore reopened(dir);
  EXPECT_TRUE(reopened.contains(spec));
  EXPECT_EQ(reopened.counters().recovered_commits, 0u);
}

TEST(ResultsStore, EntriesAreHashOrderedAndDistinct) {
  ResultsStore store(fresh_dir("entries"));
  const JobSpec a = tiny_spec(7);
  const JobSpec b = tiny_spec(100);
  store.publish(a, run_replicates_for(a));
  store.publish(b, run_replicates_for(b));
  const std::vector<JobSpec> entries = store.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_LT(entries[0].content_hash(), entries[1].content_hash());
  EXPECT_TRUE(store.contains_hash(a.content_hash()));
  EXPECT_TRUE(store.contains_hash(b.content_hash()));
}

TEST(ResultsStore, CrossoverAndCurveServeFromStore) {
  ResultsStore store(fresh_dir("query"));
  const JobSpec a = tiny_spec(7);
  const JobSpec b = tiny_spec(100);
  store.publish(a, run_replicates_for(a));
  store.publish(b, run_replicates_for(b));

  const StoredResult ra = *store.load(a);
  const StoredResult rb = *store.load(b);
  const CompletionCurve curve = completion_curve(ra);
  EXPECT_EQ(curve.nodes, a.config.nodes);
  EXPECT_EQ(curve.replicates, ra.replicates.size());
  ASSERT_FALSE(curve.mean_complete_nodes.empty());
  // All replicates delivered, so the curve ends at n complete nodes.
  EXPECT_DOUBLE_EQ(curve.mean_complete_nodes.back(),
                   static_cast<double>(a.config.nodes));

  const CrossoverReport x = find_crossover(ra, rb);
  EXPECT_EQ(x.winner == 0,
            x.mean_rounds_a == x.mean_rounds_b);
  // Self-crossover: a dominates itself from round 0.
  const CrossoverReport self = find_crossover(ra, ra);
  EXPECT_EQ(self.winner, 0);
  EXPECT_EQ(self.a_dominates_from, 0u);
  EXPECT_EQ(self.b_dominates_from, 0u);
}

}  // namespace
}  // namespace hinet
