// ExperimentService end-to-end: content-addressed admission, deduped
// execution, journal resume, admission control, and the simulate-once
// serve-many contract (counter-verified cache hits).
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "analysis/journal.hpp"
#include "analysis/scenarios.hpp"
#include "util/require.hpp"

namespace hinet {
namespace {

JobSpec tiny_spec(std::uint64_t base_seed = 7, std::uint64_t reps = 2) {
  JobSpec spec;
  spec.scenario = Scenario::kHiNetOne;
  spec.config.nodes = 12;
  spec.config.heads = 3;
  spec.config.k = 3;
  spec.config.alpha = 2;
  spec.config.hop_l = 2;
  spec.base_seed = base_seed;
  spec.repetitions = reps;
  return spec;
}

std::string fresh_dir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "hinet_service_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(Service, SubmitRunQueryLifecycle) {
  ExperimentService service(fresh_dir("lifecycle"), {});
  const JobSpec spec = tiny_spec();

  EXPECT_EQ(service.submit(spec), ExperimentService::SubmitOutcome::kEnqueued);
  EXPECT_EQ(service.submit(spec),
            ExperimentService::SubmitOutcome::kAlreadyPending);
  EXPECT_EQ(service.pending(), 1u);

  const ServiceReport report = service.run_pending();
  EXPECT_EQ(report.executed_jobs, 1u);
  EXPECT_EQ(report.cache_hits, 0u);
  EXPECT_EQ(report.failed_jobs, 0u);
  EXPECT_EQ(service.pending(), 0u);
  EXPECT_FALSE(std::filesystem::exists(service.journal_path(spec)))
      << "published job must not leave its journal behind";

  // Second submission of a stored (spec, seed) is a pure cache hit: no
  // queue traffic, no simulation — counter-verified through the store.
  EXPECT_EQ(service.submit(spec), ExperimentService::SubmitOutcome::kCacheHit);
  EXPECT_EQ(service.pending(), 0u);
  const std::size_t hits_before = service.store().counters().hits;
  const std::optional<StoredResult> got = service.store().load(spec);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(service.store().counters().hits, hits_before + 1);
  EXPECT_EQ(got->replicates.size(), spec.repetitions);
}

TEST(Service, QueuedDuplicateOfStoredJobBecomesCacheHit) {
  // A job can land in the queue while an identical one is already stored
  // (e.g. two submitters racing a drain).  run_pending must acknowledge it
  // from the store, never simulate it again.
  const std::string dir = fresh_dir("dedupe");
  {
    ExperimentService service(dir, {});
    service.submit(tiny_spec());
    service.run_pending();
  }
  // Re-enqueue the same spec directly (bypassing submit's cache check the
  // way a pre-crash submission would have).
  {
    ExperimentService service(dir, {});
    {
      // Scoped: the queue's writer lock must release before run_pending
      // opens its own wait-mode handle.
      JobQueue queue(service.queue_path(), 256, FramedLog::Access::kWait);
      queue.submit(tiny_spec());
    }
    const ServiceReport report = service.run_pending();
    EXPECT_EQ(report.executed_jobs, 0u);
    EXPECT_EQ(report.cache_hits, 1u);
    EXPECT_EQ(service.pending(), 0u);
  }
}

TEST(Service, AdmissionIsBounded) {
  ServiceOptions options;
  options.max_pending = 2;
  ExperimentService service(fresh_dir("bounded"), options);
  EXPECT_EQ(service.submit(tiny_spec(1)),
            ExperimentService::SubmitOutcome::kEnqueued);
  EXPECT_EQ(service.submit(tiny_spec(100)),
            ExperimentService::SubmitOutcome::kEnqueued);
  EXPECT_THROW(service.submit(tiny_spec(200)), QueueFullError);
  // Rejection is not sticky: draining frees capacity.
  service.run_pending();
  EXPECT_EQ(service.submit(tiny_spec(200)),
            ExperimentService::SubmitOutcome::kEnqueued);
}

TEST(Service, PendingJobsSurviveReopen) {
  const std::string dir = fresh_dir("reopen");
  const JobSpec spec = tiny_spec();
  {
    ExperimentService service(dir, {});
    service.submit(spec);
  }
  ExperimentService service(dir, {});
  EXPECT_EQ(service.pending(), 1u);
  const ServiceReport report = service.run_pending();
  EXPECT_EQ(report.executed_jobs, 1u);
  EXPECT_TRUE(service.store().contains(spec));
}

TEST(Service, JournaledReplicatesAreNotReExecuted) {
  // Simulate a drain killed mid-job: the journal already holds replicate 0.
  // The resumed drain must execute only the missing replicate and still
  // publish a result byte-identical to an uninterrupted run.
  const std::string dir = fresh_dir("resume");
  const JobSpec spec = tiny_spec(7, 2);

  std::uint64_t uninterrupted_digest = 0;
  {
    ExperimentService service(fresh_dir("resume_clean"), {});
    service.submit(spec);
    service.run_pending();
    uninterrupted_digest = query_digest(*service.store().load(spec));
  }

  {
    ExperimentService service(dir, {});
    service.submit(spec);
    // Pre-seed the journal exactly as the killed run would have left it.
    const std::vector<ReplicateResult> reps =
        run_replicates(scenario_factory(spec.scenario, spec.config), 1,
                       spec.base_seed, 1);
    ExperimentJournal journal(service.journal_path(spec));
    journal.append(spec.base_seed, reps[0]);
  }

  ExperimentService service(dir, {});
  const ServiceReport report = service.run_pending();
  EXPECT_EQ(report.executed_jobs, 1u);
  EXPECT_EQ(report.resumed_replicates, 1u);
  EXPECT_EQ(query_digest(*service.store().load(spec)),
            uninterrupted_digest);
}

TEST(Service, CancelBetweenJobsLeavesQueueResumable) {
  const std::string dir = fresh_dir("cancel");
  std::atomic<bool> cancel{true};  // cancelled before the first job
  ServiceOptions options;
  options.cancel = &cancel;
  {
    ExperimentService service(dir, options);
    service.submit(tiny_spec());
    const ServiceReport report = service.run_pending();
    EXPECT_TRUE(report.cancelled);
    EXPECT_EQ(report.executed_jobs, 0u);
    EXPECT_EQ(service.pending(), 1u);
  }
  ExperimentService resumed(dir, {});
  const ServiceReport report = resumed.run_pending();
  EXPECT_FALSE(report.cancelled);
  EXPECT_EQ(report.executed_jobs, 1u);
}

TEST(Service, OnJobPublishedFiresAfterDurableCommit) {
  std::vector<std::uint64_t> published;
  ServiceOptions options;
  options.on_job_published = [&published](const JobSpec& spec) {
    published.push_back(spec.content_hash());
  };
  ExperimentService service(fresh_dir("hook"), options);
  const JobSpec spec = tiny_spec();
  service.submit(spec);
  service.run_pending();
  ASSERT_EQ(published.size(), 1u);
  EXPECT_EQ(published[0], spec.content_hash());
  // The hook ran after commit: the store already serves the job.
  EXPECT_TRUE(service.store().contains(spec));
}

TEST(Service, SubmitRejectsSeedOverflow) {
  ExperimentService service(fresh_dir("overflow"), {});
  JobSpec spec = tiny_spec();
  spec.base_seed = std::numeric_limits<std::uint64_t>::max() - 1;
  spec.repetitions = 3;
  EXPECT_THROW(service.submit(spec), PreconditionError);
  spec.repetitions = 0;
  EXPECT_THROW(service.submit(spec), PreconditionError);
}

TEST(Service, ExecutionPolicyDoesNotChangeTheDigest) {
  // simulate-once-serve-many only holds if every policy stores the same
  // statistics; the digest ties the service to the ExecutionPolicy
  // equivalence contract.
  const JobSpec spec = tiny_spec(7, 3);
  std::vector<std::uint64_t> digests;
  const ExecutionPolicy policies[] = {
      ExecutionPolicy::serial(), ExecutionPolicy::threaded(2),
      ExecutionPolicy::batched(2), ExecutionPolicy::threaded_batched(2, 2)};
  for (const ExecutionPolicy& policy : policies) {
    ServiceOptions options;
    options.policy = policy;
    ExperimentService service(fresh_dir("policy"), options);
    service.submit(spec);
    service.run_pending();
    digests.push_back(query_digest(*service.store().load(spec)));
  }
  for (const std::uint64_t d : digests) EXPECT_EQ(d, digests[0]);
}

}  // namespace
}  // namespace hinet
