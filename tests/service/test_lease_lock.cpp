// Lease locks: O_EXCL exclusivity, renewal, expiry takeover, fencing
// token monotonicity, and the age-gating of unreadable lock files — all
// on an injected fake clock, so expiry is deterministic.
#include "service/lease_lock.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <utility>

namespace hinet {
namespace {

std::string fresh_dir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "hinet_lease_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A manager on a shared fake clock.  `clock` outlives the manager.
LeaseManager make_manager(const std::string& dir,
                          const std::shared_ptr<std::uint64_t>& clock,
                          const std::string& owner,
                          std::uint64_t lease_ms = 1000,
                          std::uint64_t grace_ms = 100) {
  LeaseManager::Options opt;
  opt.lease_ms = lease_ms;
  opt.takeover_grace_ms = grace_ms;
  opt.owner = owner;
  opt.now_ms = [clock] { return *clock; };
  return LeaseManager(dir, opt);
}

TEST(LeaseLock, AcquireRenewReleaseLifecycle) {
  const std::string dir = fresh_dir("lifecycle");
  const auto clock = std::make_shared<std::uint64_t>(10'000);
  LeaseManager mgr = make_manager(dir, clock, "drain-a");

  std::optional<LeaseLock> lease = mgr.try_acquire("job-1");
  ASSERT_TRUE(lease.has_value());
  EXPECT_TRUE(lease->held());
  EXPECT_EQ(lease->name(), "job-1");
  EXPECT_GE(lease->token(), 1u);

  const std::optional<LeaseInfo> peeked = mgr.peek("job-1");
  ASSERT_TRUE(peeked.has_value());
  EXPECT_EQ(peeked->owner, "drain-a");
  EXPECT_EQ(peeked->token, lease->token());
  EXPECT_EQ(peeked->expiry_ms, 11'000u);

  *clock = 10'500;
  EXPECT_TRUE(lease->renew());
  EXPECT_EQ(mgr.peek("job-1")->expiry_ms, 11'500u);

  lease->release();
  EXPECT_FALSE(lease->held());
  EXPECT_FALSE(mgr.peek("job-1").has_value());
  EXPECT_FALSE(std::filesystem::exists(mgr.lease_path("job-1")));
}

TEST(LeaseLock, LiveLeaseRefusesSecondAcquire) {
  const std::string dir = fresh_dir("busy");
  const auto clock = std::make_shared<std::uint64_t>(0);
  LeaseManager a = make_manager(dir, clock, "drain-a");
  LeaseManager b = make_manager(dir, clock, "drain-b");

  std::optional<LeaseLock> held = a.try_acquire("job-1");
  ASSERT_TRUE(held.has_value());
  EXPECT_FALSE(b.try_acquire("job-1").has_value());
  // A different job is independent.
  EXPECT_TRUE(b.try_acquire("job-2").has_value());
}

TEST(LeaseLock, ExpiredLeaseIsTakenOverWithStrictlyLargerToken) {
  const std::string dir = fresh_dir("takeover");
  const auto clock = std::make_shared<std::uint64_t>(0);
  LeaseManager a = make_manager(dir, clock, "drain-a");
  LeaseManager b = make_manager(dir, clock, "drain-b");

  std::optional<LeaseLock> stale = a.try_acquire("job-1");
  ASSERT_TRUE(stale.has_value());
  const std::uint64_t old_token = stale->token();

  // Within expiry and within grace: the lease is untouchable.
  *clock = 999;
  EXPECT_FALSE(b.try_acquire("job-1").has_value());
  *clock = 1050;  // expired at 1000, grace runs to 1100
  EXPECT_FALSE(b.try_acquire("job-1").has_value());

  *clock = 1100;
  std::optional<LeaseLock> next = b.try_acquire("job-1");
  ASSERT_TRUE(next.has_value());
  EXPECT_GT(next->token(), old_token);
  EXPECT_EQ(b.takeovers(), 1u);

  // The fencing check flips: only the successor's token validates.
  EXPECT_FALSE(a.validate("job-1", old_token));
  EXPECT_TRUE(a.validate("job-1", next->token()));

  // The zombie discovers the takeover at its next heartbeat — and the
  // loss is permanent.
  EXPECT_FALSE(stale->renew());
  EXPECT_FALSE(stale->held());
  EXPECT_FALSE(stale->renew());

  // Releasing the zombie's handle must not unlink the successor's lock.
  stale->release();
  EXPECT_TRUE(std::filesystem::exists(b.lease_path("job-1")));
}

TEST(LeaseLock, TokensAreMonotoneAcrossTakeoversAndReleases) {
  const std::string dir = fresh_dir("monotone");
  const auto clock = std::make_shared<std::uint64_t>(0);
  LeaseManager mgr = make_manager(dir, clock, "drain-a");

  std::uint64_t last = 0;
  for (int round = 0; round < 3; ++round) {
    std::optional<LeaseLock> lease = mgr.try_acquire("job-1");
    ASSERT_TRUE(lease.has_value());
    EXPECT_GT(lease->token(), last) << "fence must never reissue a token";
    last = lease->token();
    lease->release();
  }

  // Takeover path: hold without releasing, let it expire, reacquire.
  std::optional<LeaseLock> zombie = mgr.try_acquire("job-1");
  ASSERT_TRUE(zombie.has_value());
  EXPECT_GT(zombie->token(), last);
  last = zombie->token();
  *clock += 2000;
  std::optional<LeaseLock> successor = mgr.try_acquire("job-1");
  ASSERT_TRUE(successor.has_value());
  EXPECT_GT(successor->token(), last);
}

TEST(LeaseLock, ValidateIgnoresExpiryUntilTakeover) {
  // An expired-but-untaken lease still belongs to its holder: the fence
  // only moves when a successor actually takes over.  (This is why a slow
  // drainer with no contention still gets to publish.)
  const std::string dir = fresh_dir("expiry");
  const auto clock = std::make_shared<std::uint64_t>(0);
  LeaseManager mgr = make_manager(dir, clock, "drain-a");
  std::optional<LeaseLock> lease = mgr.try_acquire("job-1");
  ASSERT_TRUE(lease.has_value());
  *clock = 50'000;  // far past expiry, nobody contended
  EXPECT_TRUE(mgr.validate("job-1", lease->token()));
  EXPECT_TRUE(lease->renew());  // and the holder can still renew
}

TEST(LeaseLock, UnreadableLockFileIsAgeGated) {
  const std::string dir = fresh_dir("unreadable");
  const auto clock = std::make_shared<std::uint64_t>(1);
  LeaseManager mgr = make_manager(dir, clock, "drain-a");

  {
    std::ofstream garbage(mgr.lease_path("job-1"), std::ios::binary);
    garbage << "torn";
  }
  // Fake-now far below the file's (real) mtime: looks like a winner
  // mid-creation — busy, not corrupt.
  EXPECT_FALSE(mgr.try_acquire("job-1").has_value());

  // Fake-now far past mtime + lease + grace: the creator is dead; take
  // the garbage over and acquire cleanly.
  *clock = std::uint64_t{1} << 62;
  std::optional<LeaseLock> lease = mgr.try_acquire("job-1");
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(mgr.takeovers(), 1u);
  EXPECT_EQ(mgr.peek("job-1")->owner, "drain-a");
}

TEST(LeaseLock, ListReportsEveryLiveLease) {
  const std::string dir = fresh_dir("list");
  const auto clock = std::make_shared<std::uint64_t>(0);
  LeaseManager mgr = make_manager(dir, clock, "drain-a");
  std::optional<LeaseLock> l1 = mgr.try_acquire("job-a");
  std::optional<LeaseLock> l2 = mgr.try_acquire("job-b");
  ASSERT_TRUE(l1.has_value());
  ASSERT_TRUE(l2.has_value());

  const auto live = mgr.list();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0].first, "job-a");
  EXPECT_EQ(live[1].first, "job-b");
  EXPECT_EQ(live[0].second.owner, "drain-a");

  l1->release();
  EXPECT_EQ(mgr.list().size(), 1u);
}

TEST(LeaseLock, MovedFromHandleDoesNotDoubleRelease) {
  const std::string dir = fresh_dir("move");
  const auto clock = std::make_shared<std::uint64_t>(0);
  LeaseManager mgr = make_manager(dir, clock, "drain-a");
  std::optional<LeaseLock> a = mgr.try_acquire("job-1");
  ASSERT_TRUE(a.has_value());
  const std::uint64_t token = a->token();

  LeaseLock b = std::move(*a);
  EXPECT_TRUE(b.held());
  EXPECT_EQ(b.token(), token);
  b.release();
  EXPECT_FALSE(std::filesystem::exists(mgr.lease_path("job-1")));

  // Destroying the moved-from optional must not throw or unlink anything
  // a new holder owns.
  std::optional<LeaseLock> c = mgr.try_acquire("job-1");
  ASSERT_TRUE(c.has_value());
  a.reset();
  EXPECT_TRUE(std::filesystem::exists(mgr.lease_path("job-1")));
}

}  // namespace
}  // namespace hinet
