// Multi-process drain torture, run deterministically in-process: two
// ExperimentService instances share one directory and one fake clock, and
// test hooks interleave them at the exact boundaries that matter — while
// a job is claimed, between replicate completion and publish, and after
// each staged-commit boundary.  The invariants under torture:
//
//   * every submitted job ends up stored exactly once (ledger publishes
//     == 1 per hash, no matter who won);
//   * the stored result is byte-identical (query_digest) to an
//     uninterrupted single-drain run — takeovers resume from the
//     zombie's journal instead of re-executing;
//   * a fenced zombie reports stale-leases, never corrupts, never throws
//     out of run_pending();
//   * a writable queue is single-writer (ConcurrentWriterError), while
//     read-only observers are never blocked.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/scenarios.hpp"
#include "service/framed_log.hpp"
#include "service/lease_lock.hpp"
#include "service/service.hpp"

namespace hinet {
namespace {

JobSpec tiny_spec(std::uint64_t base_seed = 7, std::uint64_t reps = 2) {
  JobSpec spec;
  spec.scenario = Scenario::kHiNetOne;
  spec.config.nodes = 12;
  spec.config.heads = 3;
  spec.config.k = 3;
  spec.config.alpha = 2;
  spec.config.hop_l = 2;
  spec.base_seed = base_seed;
  spec.repetitions = reps;
  return spec;
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "hinet_mdrain_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

/// The ground truth: what an uninterrupted single drain stores.
std::uint64_t clean_digest(const JobSpec& spec) {
  ExperimentService service(fresh_dir("clean-" + spec.hash_hex()), {});
  service.submit(spec);
  service.run_pending();
  return query_digest(*service.store().load(spec));
}

ServiceOptions drain_options(const std::shared_ptr<std::uint64_t>& clock,
                             const std::string& id,
                             std::uint64_t lease_ms = 1000) {
  ServiceOptions opt;
  opt.policy = ExecutionPolicy::serial();
  opt.lease_ms = lease_ms;
  opt.takeover_grace_ms = 100;
  opt.drain_id = id;
  opt.now_ms = [clock] { return *clock; };
  return opt;
}

TEST(MultiDrain, SiblingSkipsClaimedJobAndDrainsTheRest) {
  const std::string dir = fresh_dir("split");
  const auto clock = std::make_shared<std::uint64_t>(0);

  ExperimentService b(dir, drain_options(clock, "drain-b"));
  bool fired = false;
  ServiceOptions a_opt = drain_options(clock, "drain-a");
  // While A sits between replicate completion and publish of its first
  // claimed job, B drains everything else.  B must skip A's job — it is
  // leased — and must not double-execute anything.
  a_opt.on_job_will_publish = [&](const JobSpec&) {
    if (fired) return;
    fired = true;
    const ServiceReport inner = b.run_pending();
    EXPECT_EQ(inner.executed_jobs, 2u);
    EXPECT_EQ(inner.skipped_claimed, 1u) << "A's leased job must be skipped";
    EXPECT_EQ(inner.stale_leases, 0u);
  };
  ExperimentService a(dir, a_opt);

  const std::vector<JobSpec> jobs = {tiny_spec(1), tiny_spec(50),
                                     tiny_spec(90)};
  for (const JobSpec& j : jobs) a.submit(j);

  const ServiceReport report = a.run_pending();
  EXPECT_TRUE(fired);
  EXPECT_EQ(report.executed_jobs, 1u);
  EXPECT_EQ(report.stale_leases, 0u);
  EXPECT_EQ(a.pending(), 0u);

  const ExecutionLedger ledger = read_execution_ledger(dir);
  EXPECT_EQ(ledger.total_publishes, jobs.size());
  for (const JobSpec& j : jobs) {
    EXPECT_EQ(ledger.jobs.at(j.content_hash()).publishes, 1u)
        << "job " << j.hash_hex() << " published more than once";
    EXPECT_EQ(query_digest(*a.store().load(j)), clean_digest(j))
        << "interleaved drains changed job " << j.hash_hex();
  }
}

TEST(MultiDrain, ZombieIsFencedAndSuccessorResumesFromItsJournal) {
  const std::string dir = fresh_dir("zombie");
  const auto clock = std::make_shared<std::uint64_t>(0);
  const JobSpec job = tiny_spec(7, 3);

  LeaseManager::Options thief_opt;
  thief_opt.owner = "thief";
  thief_opt.takeover_grace_ms = 100;
  thief_opt.now_ms = [clock] { return *clock; };
  LeaseManager thief(dir, thief_opt);
  std::optional<LeaseLock> stolen;

  ServiceOptions a_opt = drain_options(clock, "drain-a");
  a_opt.on_job_will_publish = [&](const JobSpec& j) {
    if (stolen.has_value()) return;
    // A pauses (SIGSTOP, swap storm...) with replicates done but the
    // publish not started.  Its lease expires and a contender takes the
    // job over — from here A is a zombie and its publish must be fenced.
    // The thief *keeps* the lease, so A's retry pass sees a live foreign
    // lease and leaves the job alone instead of reclaiming it.
    *clock += 5000;
    stolen =
        thief.try_acquire(ExperimentService::job_resource(j.content_hash()));
    ASSERT_TRUE(stolen.has_value()) << "expired lease must be takeable";
  };
  ExperimentService a(dir, a_opt);
  a.submit(job);

  const ServiceReport zombie = a.run_pending();
  EXPECT_EQ(zombie.stale_leases, 1u);
  EXPECT_EQ(zombie.executed_jobs, 0u);
  EXPECT_EQ(zombie.skipped_claimed, 1u)
      << "the job now belongs to the thief and must be skipped";
  EXPECT_FALSE(zombie.cancelled);
  EXPECT_EQ(a.pending(), 1u) << "the fenced job must stay pending";
  EXPECT_FALSE(a.store().contains(job));
  EXPECT_TRUE(std::filesystem::exists(a.journal_path(job)))
      << "the zombie's journal is the successor's resume point";

  // The thief dies without doing anything; its lease release frees the
  // job.  A successor drains it — and every replicate must come from the
  // zombie's journal, not from re-execution.
  stolen->release();
  ExperimentService b(dir, drain_options(clock, "drain-b"));
  const ServiceReport resumed = b.run_pending();
  EXPECT_EQ(resumed.executed_jobs, 1u);
  EXPECT_EQ(resumed.resumed_replicates, job.repetitions);
  EXPECT_EQ(query_digest(*b.store().load(job)), clean_digest(job));

  const ExecutionLedger ledger = read_execution_ledger(dir);
  EXPECT_EQ(ledger.jobs.at(job.content_hash()).publishes, 1u);
  EXPECT_EQ(ledger.jobs.at(job.content_hash()).stales, 1u);
}

TEST(MultiDrain, TakeoverAtEveryCommitStageBoundaryPublishesExactlyOnce) {
  // The in-process analogue of kill -9 at each staged-commit boundary,
  // with a live contender instead of a restart: A passes stage S, is
  // taken over, B fully executes the job, A resumes and must be fenced at
  // its next stage.  Regardless of S, the store ends with exactly one
  // published result, byte-identical to a clean run.
  const ResultsStore::CommitStage stages[] = {
      ResultsStore::CommitStage::kIntentLogged,
      ResultsStore::CommitStage::kSegmentWritten,
  };
  for (const ResultsStore::CommitStage stage : stages) {
    const std::string dir =
        fresh_dir("stage" + std::to_string(static_cast<int>(stage)));
    const auto clock = std::make_shared<std::uint64_t>(0);
    const JobSpec job = tiny_spec(11, 2);

    ExperimentService b(dir, drain_options(clock, "drain-b"));
    ExperimentService a(dir, drain_options(clock, "drain-a"));
    bool fired = false;
    ServiceReport b_report;
    a.store().set_commit_hook([&](ResultsStore::CommitStage s) {
      if (s != stage || fired) return;
      fired = true;
      *clock += 5000;  // expire A's lease…
      b_report = b.run_pending();  // …and let B take the job end-to-end
    });
    a.submit(job);

    const ServiceReport a_report = a.run_pending();
    ASSERT_TRUE(fired);
    EXPECT_EQ(b_report.executed_jobs, 1u)
        << "stage " << static_cast<int>(stage);
    EXPECT_EQ(b_report.resumed_replicates, job.repetitions)
        << "B must resume from A's journal, not re-execute";
    EXPECT_EQ(a_report.stale_leases, 1u)
        << "A must be fenced after stage " << static_cast<int>(stage);
    EXPECT_EQ(a_report.executed_jobs, 0u);

    const ExecutionLedger ledger = read_execution_ledger(dir);
    EXPECT_EQ(ledger.jobs.at(job.content_hash()).publishes, 1u);
    EXPECT_EQ(query_digest(*b.store().load(job)), clean_digest(job));

    // A is healthy afterwards: its reopened store serves the result.
    EXPECT_TRUE(a.store().contains(job));
  }
}

TEST(MultiDrain, LatePublisherAfterIndexStageStillCommitsOnce) {
  // Past the index stage the result is already served; a sibling sees a
  // cache hit instead of taking the lease over, and A — never fenced —
  // finishes its commit normally.  One publish, one result.
  const std::string dir = fresh_dir("index-stage");
  const auto clock = std::make_shared<std::uint64_t>(0);
  const JobSpec job = tiny_spec(13, 2);

  ExperimentService b(dir, drain_options(clock, "drain-b"));
  ExperimentService a(dir, drain_options(clock, "drain-a"));
  bool fired = false;
  ServiceReport b_report;
  a.store().set_commit_hook([&](ResultsStore::CommitStage s) {
    if (s != ResultsStore::CommitStage::kIndexPublished || fired) return;
    fired = true;
    *clock += 5000;
    b_report = b.run_pending();
  });
  a.submit(job);

  const ServiceReport a_report = a.run_pending();
  ASSERT_TRUE(fired);
  EXPECT_EQ(b_report.executed_jobs, 0u);
  EXPECT_EQ(b_report.cache_hits, 1u)
      << "past the index stage the job is served, not re-claimed";
  EXPECT_EQ(a_report.executed_jobs, 1u);
  EXPECT_EQ(a_report.stale_leases, 0u);

  const ExecutionLedger ledger = read_execution_ledger(dir);
  EXPECT_EQ(ledger.jobs.at(job.content_hash()).publishes, 1u);
  EXPECT_EQ(query_digest(*a.store().load(job)), clean_digest(job));
}

TEST(MultiDrain, WritableQueueIsSingleWriter) {
  const std::string dir = fresh_dir("single-writer");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/queue.hjq";

  JobQueue first(path, 8);  // exclusive by default
  EXPECT_THROW(JobQueue(path, 8), ConcurrentWriterError);
  // Read-only observers are never refused (and never block).
  const JobQueue observer(path, 8, FramedLog::Access::kReadOnly);
  EXPECT_EQ(observer.pending(), 0u);
}

TEST(MultiDrain, ExclusiveFramedLogRefusesSecondWriterWithTypedError) {
  const std::string dir = fresh_dir("framed-two-writer");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/log.bin";

  FramedLog first(path, 0x1234u, 1, 0x5678u, "torture log");
  try {
    const FramedLog second(path, 0x1234u, 1, 0x5678u, "torture log");
    FAIL() << "second exclusive writer must be refused";
  } catch (const ConcurrentWriterError& e) {
    EXPECT_NE(std::string(e.what()).find("another writer"), std::string::npos);
  }
  // The error is transient, not corruption: exit-code mapping proves it.
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  first.append(payload);
  const FramedLog reader(path, 0x1234u, 1, 0x5678u, "torture log",
                         FramedLog::Access::kReadOnly);
  EXPECT_EQ(reader.records().size(), 1u);
}

}  // namespace
}  // namespace hinet
