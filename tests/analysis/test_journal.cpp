// ExperimentJournal: durable record/replay of completed replicates, and
// the headline guarantee it exists for — a killed sweep, resumed against
// its journal, aggregates byte-identically to a sweep that was never
// killed, at any worker count.
#include "analysis/journal.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>

#include "analysis/scenarios.hpp"
#include "analysis/supervisor.hpp"
#include "sim/engine.hpp"

namespace hinet {
namespace {

ScenarioConfig tiny_config() {
  ScenarioConfig cfg;
  cfg.nodes = 16;
  cfg.heads = 4;
  cfg.k = 3;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  return cfg;
}

SpecFactory tiny_factory() {
  return scenario_factory(Scenario::kHiNetOne, tiny_config());
}

/// Fresh temp path per test; the previous incarnation is removed so a
/// journal constructor always starts from scratch.
std::string journal_path(const char* tag) {
  const std::string p = ::testing::TempDir() + "hinet_journal_" + tag + ".jnl";
  std::remove(p.c_str());
  return p;
}

ReplicateResult run_one(std::uint64_t seed) {
  ReplicateResult r;
  r.metrics = run_simulation(tiny_factory()(seed));
  r.wall_ms = 1.5;
  return r;
}

TEST(ExperimentJournal, AppendLookupRoundTrip) {
  const std::string path = journal_path("roundtrip");
  ExperimentJournal j(path);
  EXPECT_TRUE(j.empty());
  EXPECT_FALSE(j.contains(7));
  EXPECT_FALSE(j.lookup(7).has_value());

  const ReplicateResult r7 = run_one(7);
  const ReplicateResult r9 = run_one(9);
  j.append(7, r7);
  j.append(9, r9);

  EXPECT_EQ(j.size(), 2u);
  EXPECT_TRUE(j.contains(7));
  EXPECT_TRUE(j.contains(9));
  EXPECT_FALSE(j.contains(8));
  ASSERT_TRUE(j.lookup(7).has_value());
  EXPECT_EQ(j.lookup(7)->metrics, r7.metrics);
  EXPECT_DOUBLE_EQ(j.lookup(7)->wall_ms, r7.wall_ms);
  ASSERT_TRUE(j.lookup(9).has_value());
  EXPECT_EQ(j.lookup(9)->metrics, r9.metrics);
  EXPECT_EQ(j.dropped_bytes(), 0u);
  std::remove(path.c_str());
}

TEST(ExperimentJournal, ReopenReplaysEveryRecord) {
  const std::string path = journal_path("reopen");
  const ReplicateResult r1 = run_one(1);
  const ReplicateResult r2 = run_one(2);
  {
    ExperimentJournal j(path);
    j.append(1, r1);
    j.append(2, r2);
  }
  ExperimentJournal j(path);
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.dropped_bytes(), 0u);
  ASSERT_TRUE(j.lookup(1).has_value());
  EXPECT_EQ(j.lookup(1)->metrics, r1.metrics);
  ASSERT_TRUE(j.lookup(2).has_value());
  EXPECT_EQ(j.lookup(2)->metrics, r2.metrics);

  // And it stays appendable after a replay.
  const ReplicateResult r3 = run_one(3);
  j.append(3, r3);
  ExperimentJournal again(path);
  EXPECT_EQ(again.size(), 3u);
  std::remove(path.c_str());
}

TEST(ExperimentJournal, DuplicateSeedIsRejected) {
  const std::string path = journal_path("dup");
  ExperimentJournal j(path);
  j.append(4, run_one(4));
  EXPECT_THROW(j.append(4, run_one(4)), PreconditionError);
  EXPECT_EQ(j.size(), 1u);
  std::remove(path.c_str());
}

TEST(ExperimentJournal, KilledSweepResumesByteIdenticallyAtAnyJobCount) {
  // The acceptance-criterion test: run the sweep clean; then run it again
  // journaled but cancelled after 3 fresh completions (the graceful twin
  // of sweep_runner's --abort-after SIGKILL lever, which the CI smoke
  // exercises); then resume from the journal.  The resumed aggregate must
  // match the clean one on every statistic and on the digest, for every
  // worker count.
  const std::size_t reps = 10;
  const std::uint64_t base_seed = 21;
  const SpecFactory factory = tiny_factory();

  const AggregateResult clean = run_experiment(
      factory, ExperimentOptions{reps, base_seed, ExecutionPolicy::serial()});

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{4}}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    const std::string path =
        journal_path(("resume_j" + std::to_string(jobs)).c_str());

    {
      ExperimentJournal journal(path);
      std::atomic<bool> cancel{false};
      std::atomic<std::size_t> fresh{0};
      SupervisorPolicy policy;
      policy.journal = &journal;
      policy.cancel = &cancel;
      policy.on_progress = [&](std::size_t, std::uint64_t) {
        if (fresh.fetch_add(1) + 1 >= 3) cancel.store(true);
      };
      const SupervisedBatch partial =
          run_replicates_supervised(factory, reps, base_seed, jobs, policy);
      EXPECT_TRUE(partial.cancelled);
      EXPECT_LT(partial.completed(), reps);
      EXPECT_GE(journal.size(), 3u);
      EXPECT_LT(journal.size(), reps);
    }

    ExperimentJournal journal(path);
    SupervisorPolicy policy;
    policy.journal = &journal;
    const std::size_t already = journal.size();
    const SupervisedBatch resumed =
        run_replicates_supervised(factory, reps, base_seed, jobs, policy);
    EXPECT_EQ(resumed.completed(), reps);
    EXPECT_EQ(resumed.from_journal, already);
    EXPECT_TRUE(resumed.failures.empty());
    EXPECT_FALSE(resumed.cancelled);
    EXPECT_EQ(journal.size(), reps);

    const AggregateResult agg = aggregate_supervised(resumed, 1.0, jobs);
    EXPECT_TRUE(agg.same_statistics(clean));
    EXPECT_EQ(agg.stats_digest(), clean.stats_digest());
    std::remove(path.c_str());
  }
}

TEST(ExperimentJournal, ResultsFromTheJournalAreTheResultsThatRan) {
  // from_journal replicates must be bit-equal to freshly executed ones —
  // the journal is a cache, not an approximation.
  const std::string path = journal_path("bitexact");
  const SpecFactory factory = tiny_factory();
  {
    ExperimentJournal journal(path);
    SupervisorPolicy policy;
    policy.journal = &journal;
    run_replicates_supervised(factory, 4, 50, 1, policy);
  }
  ExperimentJournal journal(path);
  for (std::size_t rep = 0; rep < 4; ++rep) {
    const std::uint64_t seed = replicate_seed(50, rep);
    ASSERT_TRUE(journal.contains(seed));
    EXPECT_EQ(journal.lookup(seed)->metrics,
              run_simulation(factory(seed)));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hinet
