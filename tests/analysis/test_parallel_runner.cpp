// Parallel experiment runner: serial/parallel statistical equivalence,
// deterministic seed derivation, timing capture and error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "analysis/experiment.hpp"
#include "analysis/scenarios.hpp"
#include "graph/generators.hpp"

namespace hinet {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.nodes = 24;
  cfg.heads = 4;
  cfg.k = 3;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  cfg.reaffiliation_prob = 0.1;
  return cfg;
}

TEST(ParallelRunner, SeedDerivationIsBasePlusIndex) {
  EXPECT_EQ(replicate_seed(100, 0), 100u);
  EXPECT_EQ(replicate_seed(100, 7), 107u);
}

// The runner's core contract: for every scenario, every worker count must
// reproduce the serial statistics exactly (bitwise-equal doubles), because
// replicate seeds and aggregation order are independent of scheduling.
class SerialParallelEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(SerialParallelEquivalence, IdenticalStatisticsAtEveryWorkerCount) {
  const ScenarioConfig cfg = small_config();
  const SpecFactory factory = scenario_factory(GetParam(), cfg);
  const std::size_t reps = 6;
  const std::uint64_t base_seed = 42;

  const AggregateResult serial = run_experiment(
      factory, ExperimentOptions{reps, base_seed, ExecutionPolicy::serial()});
  for (std::size_t jobs = 1; jobs <= 8; ++jobs) {
    const AggregateResult parallel = run_experiment(
        factory,
        ExperimentOptions{reps, base_seed, ExecutionPolicy::threaded(jobs)});
    EXPECT_TRUE(parallel.same_statistics(serial))
        << scenario_name(GetParam()) << " diverges at jobs=" << jobs
        << "\nserial:   " << serial.to_string()
        << "\nparallel: " << parallel.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, SerialParallelEquivalence,
    ::testing::Values(Scenario::kKloInterval, Scenario::kHiNetInterval,
                      Scenario::kHiNetIntervalStable, Scenario::kKloOne,
                      Scenario::kHiNetOne),
    [](const ::testing::TestParamInfo<Scenario>& scenario_info) {
      switch (scenario_info.param) {
        case Scenario::kKloInterval: return "KloInterval";
        case Scenario::kHiNetInterval: return "HiNetInterval";
        case Scenario::kHiNetIntervalStable: return "HiNetIntervalStable";
        case Scenario::kKloOne: return "KloOne";
        case Scenario::kHiNetOne: return "HiNetOne";
      }
      return "Unknown";
    });

TEST(ParallelRunner, ReplicatesAreIndexedBySeedOffset) {
  // Each replicate must land in the slot of its own derived seed, not in
  // completion order.
  const SpecFactory factory =
      scenario_factory(Scenario::kHiNetOne, small_config());
  const auto serial = run_replicates(factory, 4, 9, 1);
  const auto parallel = run_replicates(factory, 4, 9, 4);
  ASSERT_EQ(serial.size(), 4u);
  ASSERT_EQ(parallel.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(serial[i].metrics.tokens_sent, parallel[i].metrics.tokens_sent)
        << "replicate " << i;
    EXPECT_EQ(serial[i].metrics.rounds_to_completion,
              parallel[i].metrics.rounds_to_completion)
        << "replicate " << i;
  }
}

TEST(ParallelRunner, TimingIsPopulated) {
  const SpecFactory factory =
      scenario_factory(Scenario::kHiNetInterval, small_config());
  const AggregateResult agg = run_experiment(
      factory, ExperimentOptions{3, 1, ExecutionPolicy::threaded(2)});
  EXPECT_EQ(agg.timing.jobs, 2u);
  EXPECT_GT(agg.timing.wall_seconds, 0.0);
  EXPECT_GT(agg.timing.runs_per_second, 0.0);
  EXPECT_EQ(agg.timing.replicate_wall_ms.n, 3u);
  EXPECT_GE(agg.timing.replicate_wall_ms.mean, 0.0);
}

TEST(ParallelRunner, TimingIsExcludedFromStatisticsComparison) {
  const SpecFactory factory =
      scenario_factory(Scenario::kHiNetInterval, small_config());
  const AggregateResult a = run_experiment(
      factory, ExperimentOptions{3, 1, ExecutionPolicy::serial()});
  const AggregateResult b = run_experiment(
      factory, ExperimentOptions{3, 1, ExecutionPolicy::threaded(3)});
  // Wall times differ run to run; statistics must still compare equal.
  EXPECT_TRUE(a.same_statistics(b));
}

TEST(ParallelRunner, ZeroJobsMeansDefaultJobs) {
  EXPECT_GE(default_jobs(), 1u);
  const SpecFactory factory =
      scenario_factory(Scenario::kKloOne, small_config());
  const AggregateResult agg = run_experiment(
      factory, ExperimentOptions{2, 5, ExecutionPolicy::threaded(0)});
  EXPECT_EQ(agg.timing.jobs, default_jobs());
}

TEST(ParallelRunner, FactoryExceptionPropagates) {
  const SpecFactory broken = [](std::uint64_t seed) -> SimulationSpec {
    if (seed >= 2) throw std::runtime_error("factory boom");
    return std::move(
        make_scenario(Scenario::kKloOne, small_config(), seed).spec);
  };
  EXPECT_THROW(
      run_experiment(broken,
                     ExperimentOptions{6, 0, ExecutionPolicy::threaded(4)}),
      std::runtime_error);
}

TEST(ParallelRunner, AllWorkersObserveEveryReplicateExactlyOnce) {
  std::atomic<int> calls{0};
  const SpecFactory counting = [&calls](std::uint64_t seed) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return std::move(
        make_scenario(Scenario::kHiNetOne, small_config(), seed).spec);
  };
  const AggregateResult agg = run_experiment(
      counting, ExperimentOptions{5, 3, ExecutionPolicy::threaded(3)});
  EXPECT_EQ(agg.repetitions, 5u);
  EXPECT_EQ(calls.load(), 5);
}

TEST(ExecutionPolicy_, FactoriesAndQueries) {
  EXPECT_EQ(ExecutionPolicy::serial().mode, ExecutionPolicy::Mode::kSerial);
  EXPECT_EQ(ExecutionPolicy::threaded(3).jobs, 3u);
  EXPECT_EQ(ExecutionPolicy::batched(4).replicates_per_batch, 4u);
  const ExecutionPolicy tb = ExecutionPolicy::threaded_batched(2, 4);
  EXPECT_TRUE(tb.is_threaded());
  EXPECT_TRUE(tb.is_batched());
  EXPECT_EQ(tb.effective_jobs(), 2u);
  // Serial modes never spin up a pool regardless of the jobs field.
  EXPECT_EQ(ExecutionPolicy::serial().effective_jobs(), 1u);
  EXPECT_EQ(ExecutionPolicy::batched(8).effective_jobs(), 1u);
  EXPECT_EQ(std::string(to_string(ExecutionPolicy::Mode::kThreadedBatched)),
            "threaded-batched");
}

TEST(ParallelRunner, RequiresAtLeastOneRepetition) {
  const SpecFactory factory =
      scenario_factory(Scenario::kKloOne, small_config());
  EXPECT_THROW(
      run_experiment(factory,
                     ExperimentOptions{0, 1, ExecutionPolicy::threaded(2)}),
      PreconditionError);
}

}  // namespace
}  // namespace hinet
