// ExecutionPolicy equivalence at the experiment layer: for a fixed
// (factory, repetitions, base_seed), Serial, Batched{R} and
// ThreadedBatched{jobs, R} must aggregate to byte-identical statistics
// (same_statistics AND equal stats_digest) — across every evaluation
// scenario, every channel model, fault-plan wrapping, and both base
// seeds.  Plus the lockstep indexing edge cases (partial final batch,
// R > reps, R = 1) and the supervised batched journal kill-and-resume
// guarantee.
#include "analysis/experiment.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "analysis/scenarios.hpp"
#include "analysis/supervisor.hpp"
#include "sim/channel.hpp"
#include "sim/faults.hpp"

namespace hinet {
namespace {

enum class ChannelKind { kPerfect, kLossy, kCollision, kGilbertElliott };

const char* channel_name(ChannelKind c) {
  switch (c) {
    case ChannelKind::kPerfect:
      return "perfect";
    case ChannelKind::kLossy:
      return "lossy";
    case ChannelKind::kCollision:
      return "collision";
    case ChannelKind::kGilbertElliott:
      return "gilbert-elliott";
  }
  return "?";
}

constexpr Scenario kAllScenarios[] = {
    Scenario::kKloInterval, Scenario::kHiNetInterval,
    Scenario::kHiNetIntervalStable, Scenario::kKloOne, Scenario::kHiNetOne};

constexpr ChannelKind kAllChannels[] = {
    ChannelKind::kPerfect, ChannelKind::kLossy, ChannelKind::kCollision,
    ChannelKind::kGilbertElliott};

constexpr std::uint64_t kBaseSeeds[] = {13, 777};

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.nodes = 24;
  cfg.heads = 6;
  cfg.k = 4;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  return cfg;
}

/// Factory for (scenario, channel): still a pure function of the seed, so
/// it satisfies the concurrent-invocation contract of every policy.
SpecFactory channel_factory(Scenario s, ChannelKind c) {
  const SpecFactory base = scenario_factory(s, small_config());
  return [base, c](std::uint64_t seed) {
    SimulationSpec spec = base(seed);
    switch (c) {
      case ChannelKind::kPerfect:
        break;
      case ChannelKind::kLossy:
        spec.channel =
            std::make_unique<LossyChannel>(0.2, seed ^ 0xc0ffee0ddccull);
        break;
      case ChannelKind::kCollision:
        spec.channel = std::make_unique<CollisionChannel>(3);
        break;
      case ChannelKind::kGilbertElliott:
        spec.channel = std::make_unique<GilbertElliottChannel>(
            GilbertElliottParams{}, seed ^ 0xbadc0deull);
        break;
    }
    return spec;
  };
}

/// The hostile variant: churn faults layered on the trace, Gilbert–Elliott
/// burst loss on the medium (the test_snapshot_faults.cpp construction).
SpecFactory faulty_factory(Scenario s) {
  const SpecFactory base = scenario_factory(s, small_config());
  return [base](std::uint64_t seed) {
    SimulationSpec spec = base(seed);
    const std::size_t horizon = spec.engine.max_rounds;
    FaultPlan plan = random_churn_plan(small_config().nodes,
                                       /*crash_count=*/4, horizon,
                                       /*downtime=*/3, seed ^ 0xfa71edull);
    spec.network = std::make_unique<FaultyNetwork>(std::move(spec.network),
                                                   std::move(plan));
    spec.channel = std::make_unique<GilbertElliottChannel>(
        GilbertElliottParams{}, seed ^ 0xbad'cafeull);
    return spec;
  };
}

/// Serial is the reference; each batched policy must reproduce its
/// statistics bit for bit.  reps = 5 with R = 2 exercises a partial final
/// batch on every call.
void expect_policy_equivalence(const SpecFactory& factory,
                               std::uint64_t base_seed) {
  const std::size_t reps = 5;
  const AggregateResult serial = run_experiment(
      factory, ExperimentOptions{reps, base_seed, ExecutionPolicy::serial()});
  ASSERT_EQ(serial.repetitions, reps);

  const ExecutionPolicy policies[] = {ExecutionPolicy::batched(2),
                                      ExecutionPolicy::threaded_batched(3, 2)};
  for (const ExecutionPolicy& policy : policies) {
    SCOPED_TRACE(std::string("policy ") + to_string(policy.mode));
    const AggregateResult got =
        run_experiment(factory, ExperimentOptions{reps, base_seed, policy});
    EXPECT_TRUE(got.same_statistics(serial));
    EXPECT_EQ(got.stats_digest(), serial.stats_digest());
    EXPECT_EQ(got.timing.replicates_per_batch, 2u);
  }
}

class BatchedPolicyEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(BatchedPolicyEquivalence, DigestMatchesSerialAcrossChannelsAndSeeds) {
  const Scenario s = GetParam();
  for (const ChannelKind c : kAllChannels) {
    for (const std::uint64_t seed : kBaseSeeds) {
      SCOPED_TRACE(std::string(channel_name(c)) + " / seed " +
                   std::to_string(seed));
      expect_policy_equivalence(channel_factory(s, c), seed);
    }
  }
}

TEST_P(BatchedPolicyEquivalence, DigestMatchesSerialUnderFaultPlans) {
  const Scenario s = GetParam();
  for (const std::uint64_t seed : kBaseSeeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_policy_equivalence(faulty_factory(s), seed);
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, BatchedPolicyEquivalence,
                         ::testing::Values(Scenario::kKloInterval,
                                           Scenario::kHiNetInterval,
                                           Scenario::kHiNetIntervalStable,
                                           Scenario::kKloOne,
                                           Scenario::kHiNetOne));

TEST(LockstepIndexing, EdgeCaseBatchWidthsMatchTheSerialExecutor) {
  // R = 1 (degenerate lockstep), R > reps (one short batch), R dividing
  // reps exactly, and a partial final batch — all must index results
  // identically to run_replicates.
  const SpecFactory factory =
      channel_factory(Scenario::kHiNetOne, ChannelKind::kLossy);
  const std::size_t reps = 6;
  const std::uint64_t base_seed = 91;
  const std::vector<ReplicateResult> serial =
      run_replicates(factory, reps, base_seed, 1);

  for (const std::size_t r :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{6},
        std::size_t{64}}) {
    SCOPED_TRACE("R=" + std::to_string(r));
    const std::vector<ReplicateResult> lockstep =
        run_replicates_lockstep(factory, reps, base_seed, r, 1);
    ASSERT_EQ(lockstep.size(), serial.size());
    for (std::size_t i = 0; i < reps; ++i) {
      EXPECT_EQ(lockstep[i].metrics, serial[i].metrics) << "replicate " << i;
    }
  }
}

TEST(LockstepIndexing, FactoryFailureIsPinnedToItsReplicate) {
  // A factory that throws for one seed must fail exactly that replicate —
  // the rest of its batch still runs and matches serial.
  const SpecFactory base =
      channel_factory(Scenario::kKloOne, ChannelKind::kPerfect);
  const std::uint64_t base_seed = 40;
  const std::uint64_t bad_seed = replicate_seed(base_seed, 2);
  const SpecFactory flaky = [base, bad_seed](std::uint64_t seed) {
    if (seed == bad_seed) throw IoError("spec store unreachable");
    return base(seed);
  };

  try {
    run_replicates_lockstep(flaky, 4, base_seed, 4, 1);
    FAIL() << "expected ReplicateBatchError";
  } catch (const ReplicateBatchError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].replicate, 2u);
    EXPECT_EQ(e.failures()[0].seed, bad_seed);
    EXPECT_NE(e.failures()[0].message.find("spec store unreachable"),
              std::string::npos);
  }

  // The supervised path salvages the remaining three.
  SupervisorPolicy policy;
  const SupervisedBatch batch = run_replicates_supervised(
      flaky, ExperimentOptions{4, base_seed, ExecutionPolicy::batched(4)},
      policy);
  EXPECT_EQ(batch.completed(), 3u);
  ASSERT_EQ(batch.failures.size(), 1u);
  EXPECT_EQ(batch.failures[0].replicate, 2u);
  EXPECT_EQ(batch.failures[0].cls, RunErrorClass::kIo);
  const std::vector<ReplicateResult> serial =
      run_replicates(base, 4, base_seed, 1);
  for (const std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    ASSERT_TRUE(batch.slots[i].has_value());
    EXPECT_EQ(batch.slots[i]->metrics, serial[i].metrics) << "replicate " << i;
  }
}

std::string journal_path(const char* tag) {
  const std::string p =
      ::testing::TempDir() + "hinet_batchexec_" + tag + ".jnl";
  std::remove(p.c_str());
  return p;
}

TEST(SupervisedBatched, KilledBatchedSweepResumesByteIdentically) {
  // The batched twin of test_journal.cpp's acceptance test: a journaled
  // batched sweep cancelled after 3 fresh completions, resumed under the
  // SAME batched policy, must aggregate byte-identically to an
  // uninterrupted serial run — journal records are keyed by replicate
  // seed, so resume re-batches only what is missing.
  const std::size_t reps = 10;
  const std::uint64_t base_seed = 60;
  const SpecFactory factory =
      channel_factory(Scenario::kHiNetOne, ChannelKind::kGilbertElliott);
  const ExperimentOptions batched_options{reps, base_seed,
                                          ExecutionPolicy::batched(3)};

  const AggregateResult clean = run_experiment(
      factory, ExperimentOptions{reps, base_seed, ExecutionPolicy::serial()});

  const std::string path = journal_path("resume_batched");
  {
    ExperimentJournal journal(path);
    std::atomic<bool> cancel{false};
    std::atomic<std::size_t> fresh{0};
    SupervisorPolicy policy;
    policy.journal = &journal;
    policy.cancel = &cancel;
    policy.on_progress = [&](std::size_t, std::uint64_t) {
      if (fresh.fetch_add(1) + 1 >= 3) cancel.store(true);
    };
    const SupervisedBatch partial =
        run_replicates_supervised(factory, batched_options, policy);
    EXPECT_TRUE(partial.cancelled);
    EXPECT_LT(partial.completed(), reps);
    EXPECT_GE(journal.size(), 3u);
    EXPECT_LT(journal.size(), reps);
  }

  ExperimentJournal journal(path);
  SupervisorPolicy policy;
  policy.journal = &journal;
  const std::size_t already = journal.size();
  const SupervisedBatch resumed =
      run_replicates_supervised(factory, batched_options, policy);
  EXPECT_EQ(resumed.completed(), reps);
  EXPECT_EQ(resumed.from_journal, already);
  EXPECT_TRUE(resumed.failures.empty());
  EXPECT_FALSE(resumed.cancelled);
  EXPECT_EQ(journal.size(), reps);

  const AggregateResult agg = aggregate_supervised(resumed, 1.0, 1);
  EXPECT_TRUE(agg.same_statistics(clean));
  EXPECT_EQ(agg.stats_digest(), clean.stats_digest());
  std::remove(path.c_str());
}

TEST(SupervisedBatched, ThreadedBatchedSupervisedMatchesSerialSupervised) {
  // No journal, no failures: the supervised batched executor itself (the
  // worker pool pulling lockstep batches) must match the plain serial
  // supervised path statistic for statistic.
  const SpecFactory factory =
      channel_factory(Scenario::kKloInterval, ChannelKind::kCollision);
  const std::size_t reps = 7;
  const std::uint64_t base_seed = 30;
  SupervisorPolicy policy;

  const SupervisedBatch serial = run_replicates_supervised(
      factory, ExperimentOptions{reps, base_seed, ExecutionPolicy::serial()},
      policy);
  const SupervisedBatch batched = run_replicates_supervised(
      factory,
      ExperimentOptions{reps, base_seed, ExecutionPolicy::threaded_batched(2, 3)},
      policy);
  ASSERT_EQ(serial.completed(), reps);
  ASSERT_EQ(batched.completed(), reps);
  const AggregateResult a = aggregate_supervised(serial, 1.0, 1);
  const AggregateResult b = aggregate_supervised(batched, 1.0, 2);
  EXPECT_TRUE(a.same_statistics(b));
  EXPECT_EQ(a.stats_digest(), b.stats_digest());
}

}  // namespace
}  // namespace hinet
