// Online (T, L)-HiNet assumption monitoring over realized traces.
#include "analysis/assumption_monitor.hpp"

#include <gtest/gtest.h>

#include "core/hinet_generator.hpp"

namespace hinet {
namespace {

/// Trace where nothing ever changes: head 0, member 1, gateway-free.
Ctvg static_trace(std::size_t rounds) {
  const Graph g(3, {{0, 1}, {0, 2}});
  HierarchyView h(3);
  h.set_head(0);
  h.set_member(1, 0);
  h.set_member(2, 0);
  return Ctvg(GraphSequence(std::vector<Graph>(rounds, g)),
              HierarchySequence(std::vector<HierarchyView>(rounds, h)));
}

TEST(AssumptionMonitor, StaticTraceIsClean) {
  Ctvg trace = static_trace(12);
  const AssumptionReport report = monitor_assumptions(trace, 12, 4, 1);
  ASSERT_EQ(report.windows.size(), 3u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.first_violation_round(), std::nullopt);
  for (const WindowReport& w : report.windows) {
    EXPECT_TRUE(w.ok());
    EXPECT_EQ(w.violation, "");
    EXPECT_EQ(w.length, 4u);
  }
}

TEST(AssumptionMonitor, IncompleteTrailingWindowIsIgnored) {
  Ctvg trace = static_trace(10);
  const AssumptionReport report = monitor_assumptions(trace, 10, 4, 1);
  EXPECT_EQ(report.windows.size(), 2u);  // [0,4) and [4,8); [8,10) dropped
}

TEST(AssumptionMonitor, CleanHiNetGeneratorTraceIsClean) {
  // The generator constructs Definition-8 traces by design; judging with
  // the *matching* (T, L) must report every window clean.
  HiNetConfig cfg;
  cfg.nodes = 30;
  cfg.heads = 4;
  cfg.phase_length = 6;
  cfg.phases = 5;
  cfg.hop_l = 2;
  cfg.seed = 11;
  HiNetTrace trace = make_hinet_trace(cfg);
  const std::size_t rounds = cfg.phase_length * cfg.phases;
  const AssumptionReport report =
      monitor_assumptions(trace.ctvg, rounds, cfg.phase_length, cfg.hop_l);
  ASSERT_EQ(report.windows.size(), cfg.phases);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(AssumptionMonitor, HeadChangeInsideWindowIsFlagged) {
  const Graph g(3, {{0, 1}, {0, 2}, {1, 2}});
  HierarchyView h0(3);
  h0.set_head(0);
  h0.set_member(1, 0);
  h0.set_member(2, 0);
  HierarchyView h1(3);  // head moved to node 1 mid-window
  h1.set_head(1);
  h1.set_member(0, 1);
  h1.set_member(2, 1);
  Ctvg trace(GraphSequence(std::vector<Graph>(4, g)),
             HierarchySequence({h0, h1, h1, h1}));
  const AssumptionReport report = monitor_assumptions(trace, 4, 2, 1);
  ASSERT_EQ(report.windows.size(), 2u);
  EXPECT_FALSE(report.windows[0].ok());
  EXPECT_FALSE(report.windows[0].head_set_stable);
  EXPECT_FALSE(report.windows[0].hierarchy_stable);
  EXPECT_NE(report.windows[0].violation.find("head set"), std::string::npos);
  EXPECT_TRUE(report.windows[1].ok());  // stable from round 1 on
  EXPECT_EQ(report.first_violation_round(), std::optional<Round>(0));
  EXPECT_NE(report.to_string().find("VIOLATED"), std::string::npos);
}

TEST(AssumptionMonitor, AffiliationChurnAloneBreaksOnlyHierarchy) {
  // Head set constant, but member 2 flips between the two heads inside the
  // window: Definition 2 holds, Definition 4 does not.
  const Graph g(3, {{0, 2}, {1, 2}, {0, 1}});
  HierarchyView a(3);
  a.set_head(0);
  a.set_head(1);
  a.set_member(2, 0);
  HierarchyView b(3);
  b.set_head(0);
  b.set_head(1);
  b.set_member(2, 1);
  Ctvg trace(GraphSequence(std::vector<Graph>(2, g)),
             HierarchySequence({a, b}));
  const AssumptionReport report = monitor_assumptions(trace, 2, 2, 1);
  ASSERT_EQ(report.windows.size(), 1u);
  EXPECT_TRUE(report.windows[0].head_set_stable);
  EXPECT_FALSE(report.windows[0].hierarchy_stable);
  EXPECT_NE(report.windows[0].violation.find("hierarchy"),
            std::string::npos);
}

TEST(AssumptionMonitor, LostHeadLinkBreaksConnectivity) {
  // Two heads joined only by edge 0-1, present in round 0 but not round 1:
  // the window's stable subgraph cannot span both heads (Definition 5).
  HierarchyView h(2);
  h.set_head(0);
  h.set_head(1);
  std::vector<Graph> rounds;
  rounds.push_back(Graph(2, {{0, 1}}));
  rounds.push_back(Graph(2));
  Ctvg trace(GraphSequence(std::move(rounds)),
             HierarchySequence(std::vector<HierarchyView>(2, h)));
  const AssumptionReport report = monitor_assumptions(trace, 2, 2, 1);
  ASSERT_EQ(report.windows.size(), 1u);
  EXPECT_TRUE(report.windows[0].head_set_stable);
  EXPECT_FALSE(report.windows[0].head_connectivity);
  EXPECT_FALSE(report.windows[0].l_hop_ok);
  EXPECT_NE(report.windows[0].violation.find("stable subgraph"),
            std::string::npos);
}

TEST(AssumptionMonitor, BackboneDetourBreaksOnlyLHop) {
  // Heads 0 and 3 joined through gateways 1 and 2: backbone distance 3.
  // Fine for L = 3, a violation for L = 2.
  const Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  HierarchyView h(4);
  h.set_head(0);
  h.set_head(3);
  h.set_member(1, 0, /*gateway=*/true);
  h.set_member(2, 3, /*gateway=*/true);
  Ctvg ok_trace(GraphSequence(std::vector<Graph>(2, g)),
                HierarchySequence(std::vector<HierarchyView>(2, h)));
  EXPECT_TRUE(monitor_assumptions(ok_trace, 2, 2, 3).clean());

  Ctvg bad_trace(GraphSequence(std::vector<Graph>(2, g)),
                 HierarchySequence(std::vector<HierarchyView>(2, h)));
  const AssumptionReport report = monitor_assumptions(bad_trace, 2, 2, 2);
  ASSERT_EQ(report.windows.size(), 1u);
  EXPECT_TRUE(report.windows[0].head_connectivity);
  EXPECT_FALSE(report.windows[0].l_hop_ok);
  EXPECT_NE(report.windows[0].violation.find("L-hop"), std::string::npos);
}

TEST(AssumptionMonitor, JoinCompletionFillsWindowEnds) {
  Ctvg trace = static_trace(8);
  AssumptionReport report = monitor_assumptions(trace, 8, 4, 1);
  ASSERT_EQ(report.windows.size(), 2u);
  EXPECT_EQ(report.windows[0].completion_fraction_end, -1.0);

  SimMetrics m;
  m.per_node_tx_tokens.assign(4, 0);  // n = 4
  m.complete_nodes_per_round = {0, 1, 2, 2, 3, 4};  // stopped after round 5
  join_completion(report, m);
  EXPECT_DOUBLE_EQ(report.windows[0].completion_fraction_end, 0.5);
  // Second window ends past the executed rounds: clamped to the last one.
  EXPECT_DOUBLE_EQ(report.windows[1].completion_fraction_end, 1.0);
}

}  // namespace
}  // namespace hinet
