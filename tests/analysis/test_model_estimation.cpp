// Stability estimation over organic (non-generated) traces.
#include "analysis/model_estimation.hpp"

#include <gtest/gtest.h>

#include "cluster/maintenance.hpp"
#include "core/hinet_generator.hpp"
#include "graph/markovian.hpp"
#include "graph/mobility.hpp"

namespace hinet {
namespace {

TEST(ModelEstimation, GeneratedTraceEstimatesMatchConfig) {
  HiNetConfig cfg;
  cfg.nodes = 30;
  cfg.heads = 4;
  cfg.phase_length = 6;
  cfg.phases = 4;
  cfg.hop_l = 2;
  cfg.reaffiliation_prob = 0.5;  // hierarchy churns at every boundary
  cfg.churn_edges = 0;
  cfg.seed = 3;
  HiNetTrace trace = make_hinet_trace(cfg);
  const StabilityEstimate est =
      estimate_stability(trace.ctvg, trace.ctvg.round_count());
  // The generated trace is stable within aligned phases of 6.
  EXPECT_GE(est.max_t_stable_hierarchy, 6u);
  EXPECT_GE(est.max_t_stable_head_set, 6u);
  EXPECT_GE(est.max_t_head_connectivity, 6u);
  EXPECT_EQ(est.worst_l, 2);
  EXPECT_GE(est.max_t_hinet, 6u);
}

TEST(ModelEstimation, StableHeadsStretchHeadSetStability) {
  HiNetConfig cfg;
  cfg.nodes = 24;
  cfg.heads = 3;
  cfg.phase_length = 4;
  cfg.phases = 5;
  cfg.hop_l = 2;
  cfg.reaffiliation_prob = 1.0;  // members churn every boundary
  cfg.stable_heads = true;
  cfg.churn_edges = 0;
  cfg.seed = 5;
  HiNetTrace trace = make_hinet_trace(cfg);
  const StabilityEstimate est =
      estimate_stability(trace.ctvg, trace.ctvg.round_count());
  // Head set never changes: stable for the whole trace.
  EXPECT_EQ(est.max_t_stable_head_set, trace.ctvg.round_count());
  // Full hierarchy churns at phase boundaries.
  EXPECT_LT(est.max_t_stable_hierarchy, trace.ctvg.round_count());
}

TEST(ModelEstimation, SingleClusterVacuousConnectivity) {
  HiNetConfig cfg;
  cfg.nodes = 12;
  cfg.heads = 1;
  cfg.phase_length = 3;
  cfg.phases = 3;
  cfg.hop_l = 2;
  cfg.churn_edges = 0;
  cfg.reaffiliation_prob = 0.0;
  cfg.seed = 2;
  HiNetTrace trace = make_hinet_trace(cfg);
  const StabilityEstimate est =
      estimate_stability(trace.ctvg, trace.ctvg.round_count());
  EXPECT_EQ(est.worst_l, 0);  // fewer than two heads
  EXPECT_EQ(est.max_t_hinet, est.max_t_stable_hierarchy);
}

TEST(ModelEstimation, MaintainedHierarchyOverMarkovianDynamics) {
  // The Section VI future-work pipeline: flat EMDG dynamics + a real
  // clustering algorithm; the estimate quantifies which (T, L) the
  // combination provides.
  MarkovianConfig mc;
  mc.nodes = 24;
  mc.birth = 0.08;
  mc.death = 0.1;
  mc.initial = 0.3;
  mc.rounds = 24;
  mc.seed = 7;
  GraphSequence net = make_edge_markovian_trace(mc);
  MaintainedHierarchy mh = maintain_over(net, 24);
  std::vector<Graph> graphs;
  for (Round r = 0; r < 24; ++r) graphs.push_back(net.graph_at(r));
  Ctvg trace(GraphSequence(std::move(graphs)), std::move(mh.hierarchy));
  const StabilityEstimate est = estimate_stability(trace, 24, /*t_cap=*/12);
  // Organic dynamics: estimates exist and are internally consistent.
  EXPECT_GE(est.max_t_stable_head_set, est.max_t_stable_hierarchy);
  SUCCEED();
}

TEST(ModelEstimation, RejectsBadArguments) {
  HiNetConfig cfg;
  cfg.nodes = 10;
  cfg.heads = 2;
  cfg.phase_length = 2;
  cfg.phases = 2;
  cfg.seed = 1;
  HiNetTrace trace = make_hinet_trace(cfg);
  EXPECT_THROW(estimate_stability(trace.ctvg, 0), PreconditionError);
  EXPECT_THROW(estimate_stability(trace.ctvg, 99), PreconditionError);
}

}  // namespace
}  // namespace hinet
