// Assignment, experiment harness and scenario builders.
#include <gtest/gtest.h>

#include "analysis/assignment.hpp"
#include "analysis/experiment.hpp"
#include "analysis/scenarios.hpp"
#include "graph/generators.hpp"

namespace hinet {
namespace {

std::size_t total_tokens(const std::vector<TokenSet>& sets) {
  std::size_t n = 0;
  for (const auto& s : sets) n += s.count();
  return n;
}

TEST(Assignment, DistinctRandomPlacesKTokensOnKDistinctNodes) {
  Rng rng(1);
  const auto sets = assign_tokens(10, 6, AssignmentMode::kDistinctRandom, rng);
  EXPECT_EQ(sets.size(), 10u);
  EXPECT_EQ(total_tokens(sets), 6u);
  std::size_t holders = 0;
  for (const auto& s : sets) {
    EXPECT_LE(s.count(), 1u);
    if (!s.empty()) ++holders;
  }
  EXPECT_EQ(holders, 6u);
}

TEST(Assignment, DistinctRandomRequiresKLeqN) {
  Rng rng(1);
  EXPECT_THROW(assign_tokens(3, 4, AssignmentMode::kDistinctRandom, rng),
               PreconditionError);
}

TEST(Assignment, SingleSourcePutsAllAtNodeZero) {
  Rng rng(1);
  const auto sets = assign_tokens(5, 3, AssignmentMode::kSingleSource, rng);
  EXPECT_EQ(sets[0].count(), 3u);
  EXPECT_EQ(total_tokens(sets), 3u);
}

TEST(Assignment, RoundRobinWrapsModulo) {
  Rng rng(1);
  const auto sets = assign_tokens(3, 7, AssignmentMode::kRoundRobin, rng);
  EXPECT_EQ(sets[0].count(), 3u);  // tokens 0, 3, 6
  EXPECT_EQ(sets[1].count(), 2u);  // 1, 4
  EXPECT_EQ(sets[2].count(), 2u);  // 2, 5
  EXPECT_TRUE(sets[0].contains(6));
}

TEST(Assignment, ModeNames) {
  EXPECT_STREQ(assignment_mode_name(AssignmentMode::kDistinctRandom),
               "distinct-random");
  EXPECT_STREQ(assignment_mode_name(AssignmentMode::kSingleSource),
               "single-source");
  EXPECT_STREQ(assignment_mode_name(AssignmentMode::kRoundRobin),
               "round-robin");
}

TEST(Experiment, AggregatesDeterministicRuns) {
  // The scenario factory with fixed config must aggregate cleanly.
  ScenarioConfig cfg;
  cfg.nodes = 30;
  cfg.heads = 4;
  cfg.k = 4;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  const AggregateResult agg =
      run_experiment(scenario_factory(Scenario::kHiNetInterval, cfg),
                     ExperimentOptions{3, 100, ExecutionPolicy::serial()});
  EXPECT_EQ(agg.repetitions, 3u);
  EXPECT_DOUBLE_EQ(agg.delivery_rate, 1.0);
  EXPECT_EQ(agg.rounds_to_completion.n, 3u);
  EXPECT_GT(agg.tokens_sent.mean, 0.0);
  const std::string s = agg.to_string();
  EXPECT_NE(s.find("delivery=100"), std::string::npos);
}

TEST(Experiment, RunSimulationRequiresNetwork) {
  SimulationSpec spec;  // no network, no processes
  EXPECT_THROW(run_simulation(std::move(spec)), PreconditionError);
}

TEST(Scenario, NamesAreDistinct) {
  EXPECT_STRNE(scenario_name(Scenario::kKloInterval),
               scenario_name(Scenario::kHiNetInterval));
  EXPECT_STRNE(scenario_name(Scenario::kKloOne),
               scenario_name(Scenario::kHiNetOne));
}

TEST(Scenario, AnalyticParamsUseMeasuredDynamics) {
  ScenarioConfig cfg;
  cfg.nodes = 40;
  cfg.heads = 5;
  cfg.k = 4;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  cfg.reaffiliation_prob = 0.0;
  ScenarioRun run = make_scenario(Scenario::kHiNetInterval, cfg, 7);
  EXPECT_EQ(run.analytic.n0, 40u);
  EXPECT_EQ(run.analytic.theta, 5u);  // no churn: θ == configured heads
  EXPECT_EQ(run.analytic.n_r, 0u);
  EXPECT_EQ(run.analytic.k, 4u);
  // n_m = nodes - heads - relays = 40 - 5 - 4 = 31.
  EXPECT_EQ(run.analytic.n_m, 31u);
  // Schedule: M = ⌈5/2⌉+1 = 4 phases of T = 4+4 = 8 rounds.
  EXPECT_EQ(run.scheduled_rounds, 32u);
}

TEST(Scenario, EveryScenarioDeliversAtDefaults) {
  ScenarioConfig cfg;
  cfg.nodes = 36;
  cfg.heads = 5;
  cfg.k = 4;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  for (Scenario s :
       {Scenario::kKloInterval, Scenario::kHiNetInterval,
        Scenario::kHiNetIntervalStable, Scenario::kKloOne,
        Scenario::kHiNetOne}) {
    const SimMetrics m = run_simulation(make_scenario(s, cfg, 11).spec);
    EXPECT_TRUE(m.all_delivered) << scenario_name(s);
  }
}

// The headline integration test: on like-for-like traces, the HiNet
// algorithms measurably beat the KLO baselines on communication while
// staying comparable on time — the paper's central claim, measured rather
// than computed.
class HeadlineClaim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeadlineClaim, HiNetBeatsKloOnCommunication) {
  ScenarioConfig cfg;
  cfg.nodes = 60;
  cfg.heads = 8;
  cfg.k = 6;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  cfg.reaffiliation_prob = 0.05;

  const SimMetrics klo_i = run_simulation(
      make_scenario(Scenario::kKloInterval, cfg, GetParam()).spec);
  const SimMetrics hi_i = run_simulation(
      make_scenario(Scenario::kHiNetInterval, cfg, GetParam()).spec);
  ASSERT_TRUE(klo_i.all_delivered);
  ASSERT_TRUE(hi_i.all_delivered);
  EXPECT_LT(hi_i.tokens_sent, klo_i.tokens_sent);

  const SimMetrics klo_1 =
      run_simulation(make_scenario(Scenario::kKloOne, cfg, GetParam()).spec);
  const SimMetrics hi_1 =
      run_simulation(make_scenario(Scenario::kHiNetOne, cfg, GetParam()).spec);
  ASSERT_TRUE(klo_1.all_delivered);
  ASSERT_TRUE(hi_1.all_delivered);
  EXPECT_LT(hi_1.tokens_sent, klo_1.tokens_sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeadlineClaim,
                         ::testing::Range<std::uint64_t>(0, 5));

TEST(Scenario, MeasuredCommunicationRespectsAnalyticBound) {
  // The Table 2 formulas are worst cases; measurement must not exceed
  // them (with measured θ, n_m, n_r plugged in).
  ScenarioConfig cfg;
  cfg.nodes = 50;
  cfg.heads = 6;
  cfg.k = 5;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    ScenarioRun sr = make_scenario(Scenario::kHiNetInterval, cfg, seed);
    CostParams analytic = sr.analytic;
    // The paper's n_m·n_r·k member term counts re-affiliation uploads; the
    // initial (first-affiliation) upload is one extra round of member
    // sends, so bound with n_r + 1 (see EXPERIMENTS.md).
    analytic.n_r += 1;
    const SimMetrics m = run_simulation(std::move(sr.spec));
    ASSERT_TRUE(m.all_delivered);
    EXPECT_LE(m.tokens_sent, comm_hinet_interval(analytic)) << "seed " << seed;

    ScenarioRun kr = make_scenario(Scenario::kKloInterval, cfg, seed);
    const SimMetrics km = run_simulation(std::move(kr.spec));
    ASSERT_TRUE(km.all_delivered);
    EXPECT_LE(km.tokens_sent, comm_klo_interval(kr.analytic))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace hinet
