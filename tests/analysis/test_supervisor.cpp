// Supervisor semantics: error taxonomy, retry policy, failure isolation,
// deadlines, cancellation — plus the aggregated failure report of the
// unsupervised run_replicates (which stays all-or-nothing but must name
// every casualty, not just the first).
#include "analysis/supervisor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "analysis/scenarios.hpp"
#include "baseline/klo.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

namespace hinet {
namespace {

ScenarioConfig tiny_config() {
  ScenarioConfig cfg;
  cfg.nodes = 16;
  cfg.heads = 4;
  cfg.k = 3;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  return cfg;
}

SpecFactory tiny_factory() {
  return scenario_factory(Scenario::kHiNetOne, tiny_config());
}

/// Wraps a factory to throw `make_error()`'s exception for the listed
/// replicate seeds.
template <typename MakeError>
SpecFactory failing_for(SpecFactory base, std::set<std::uint64_t> bad_seeds,
                        MakeError make_error) {
  return [base = std::move(base), bad_seeds = std::move(bad_seeds),
          make_error](std::uint64_t seed) -> SimulationSpec {
    if (bad_seeds.count(seed) != 0) make_error();
    return base(seed);
  };
}

/// A spec that cannot finish inside any tight wall-clock budget: a long
/// fixed-schedule flood with no early stop.
SimulationSpec heavy_spec() {
  const std::size_t n = 16;
  const std::size_t k = 8;
  std::vector<TokenSet> initial(n, TokenSet(k));
  for (std::size_t v = 0; v < n; ++v) initial[v].insert(v % k);
  KloFloodParams params;
  params.k = k;
  params.rounds = 50'000'000;
  SimulationSpec spec;
  spec.network = std::make_unique<StaticNetwork>(gen::complete(n));
  spec.processes = make_klo_flood_processes(initial, params);
  spec.engine.max_rounds = params.rounds;
  spec.engine.stop_when_complete = false;
  return spec;
}

TEST(RunErrorClassification, MapsExceptionTypesToClasses) {
  EXPECT_EQ(classify_run_error(PreconditionError("x")),
            RunErrorClass::kPrecondition);
  EXPECT_EQ(classify_run_error(InvariantError("x")),
            RunErrorClass::kEngineInvariant);
  EXPECT_EQ(classify_run_error(DeadlineError("x")), RunErrorClass::kDeadline);
  EXPECT_EQ(classify_run_error(IoError("x")), RunErrorClass::kIo);
  EXPECT_EQ(classify_run_error(std::runtime_error("x")),
            RunErrorClass::kOther);

  EXPECT_FALSE(is_transient(RunErrorClass::kPrecondition));
  EXPECT_FALSE(is_transient(RunErrorClass::kEngineInvariant));
  EXPECT_FALSE(is_transient(RunErrorClass::kOther));
  EXPECT_TRUE(is_transient(RunErrorClass::kDeadline));
  EXPECT_TRUE(is_transient(RunErrorClass::kIo));
}

TEST(RunReplicatesFailureReport, CollectsEveryFailureNotJustTheFirst) {
  const std::uint64_t base_seed = 100;
  const std::set<std::uint64_t> bad = {replicate_seed(base_seed, 1),
                                       replicate_seed(base_seed, 3),
                                       replicate_seed(base_seed, 4)};
  const SpecFactory factory =
      failing_for(tiny_factory(), bad,
                  [] { throw PreconditionError("injected failure"); });
  try {
    run_replicates(factory, 6, base_seed, 2);
    FAIL() << "batch with failing replicates did not throw";
  } catch (const ReplicateBatchError& e) {
    ASSERT_EQ(e.failures().size(), 3u);
    EXPECT_EQ(e.failures()[0].replicate, 1u);
    EXPECT_EQ(e.failures()[1].replicate, 3u);
    EXPECT_EQ(e.failures()[2].replicate, 4u);
    for (const ReplicateFailure& f : e.failures()) {
      EXPECT_EQ(f.seed, replicate_seed(base_seed, f.replicate));
      EXPECT_NE(f.message.find("injected failure"), std::string::npos);
    }
    // The what() report counts the casualties and names each replicate.
    const std::string what = e.what();
    EXPECT_NE(what.find("3 replicate(s) failed"), std::string::npos) << what;
    EXPECT_NE(what.find("replicate 4"), std::string::npos) << what;
  }
}

TEST(RunReplicatesFailureReport, SeedOverflowIsRejectedUpFront) {
  const std::uint64_t near_max = std::numeric_limits<std::uint64_t>::max() - 1;
  EXPECT_THROW(run_replicates(tiny_factory(), 3, near_max, 1),
               PreconditionError);
  SupervisorPolicy policy;
  EXPECT_THROW(
      run_replicates_supervised(tiny_factory(), 3, near_max, 1, policy),
      PreconditionError);
  // Exactly at the boundary is fine: seeds near_max and near_max + 1.
  EXPECT_NO_THROW(run_replicates(tiny_factory(), 2, near_max, 1));
}

TEST(Supervisor, IsolatesFailuresAndSalvagesTheRest) {
  const std::uint64_t base_seed = 200;
  const std::set<std::uint64_t> bad = {replicate_seed(base_seed, 2)};
  const SpecFactory factory = failing_for(
      tiny_factory(), bad, [] { throw InvariantError("simulated bug"); });
  SupervisorPolicy policy;
  policy.max_retries = 2;  // must NOT retry: invariant is deterministic
  const SupervisedBatch batch =
      run_replicates_supervised(factory, 5, base_seed, 2, policy);

  EXPECT_EQ(batch.completed(), 4u);
  ASSERT_EQ(batch.failures.size(), 1u);
  EXPECT_EQ(batch.failures[0].replicate, 2u);
  EXPECT_EQ(batch.failures[0].cls, RunErrorClass::kEngineInvariant);
  EXPECT_EQ(batch.failures[0].attempts, 1u);
  EXPECT_FALSE(batch.slots[2].has_value());
  EXPECT_FALSE(batch.cancelled);

  const AggregateResult agg = aggregate_supervised(batch, 1.0, 2);
  EXPECT_EQ(agg.failed_replicates, 1u);
  EXPECT_EQ(agg.repetitions, 4u);

  // A clean run of the same sweep is a *different* result: the loss is
  // part of the statistics and of the digest.
  const AggregateResult clean = run_experiment(
      tiny_factory(),
      ExperimentOptions{5, base_seed, ExecutionPolicy::serial()});
  EXPECT_FALSE(agg.same_statistics(clean));
  EXPECT_NE(agg.stats_digest(), clean.stats_digest());
}

TEST(Supervisor, RetriesTransientFailuresWithBackoff) {
  const std::uint64_t base_seed = 300;
  const std::uint64_t flaky_seed = replicate_seed(base_seed, 1);
  auto attempts = std::make_shared<std::atomic<std::size_t>>(0);
  const SpecFactory base = tiny_factory();
  const SpecFactory factory = [base, flaky_seed,
                               attempts](std::uint64_t seed) {
    if (seed == flaky_seed &&
        attempts->fetch_add(1, std::memory_order_relaxed) == 0) {
      throw IoError("transient: scratch volume hiccup");
    }
    return base(seed);
  };

  SupervisorPolicy policy;
  policy.max_retries = 2;
  policy.backoff_base_ms = 1;
  const SupervisedBatch batch =
      run_replicates_supervised(factory, 3, base_seed, 1, policy);
  EXPECT_EQ(batch.completed(), 3u);
  EXPECT_TRUE(batch.failures.empty());
  EXPECT_EQ(batch.retried_replicates, 1u);
  EXPECT_EQ(aggregate_supervised(batch, 1.0, 1).retried_replicates, 1u);
}

TEST(Supervisor, ExhaustedRetriesReportTotalAttempts) {
  const std::uint64_t base_seed = 400;
  const std::set<std::uint64_t> bad = {replicate_seed(base_seed, 0)};
  const SpecFactory factory = failing_for(
      tiny_factory(), bad, [] { throw IoError("permanent hiccup"); });
  SupervisorPolicy policy;
  policy.max_retries = 2;
  policy.backoff_base_ms = 1;
  const SupervisedBatch batch =
      run_replicates_supervised(factory, 2, base_seed, 1, policy);
  ASSERT_EQ(batch.failures.size(), 1u);
  EXPECT_EQ(batch.failures[0].cls, RunErrorClass::kIo);
  EXPECT_EQ(batch.failures[0].attempts, 3u);  // 1 initial + 2 retries
}

TEST(Supervisor, DeadlineBoundsAStuckReplicate) {
  SupervisorPolicy policy;
  policy.deadline_ms = 1;
  policy.retry_deadline = false;
  const SpecFactory factory = [](std::uint64_t) { return heavy_spec(); };
  const SupervisedBatch batch =
      run_replicates_supervised(factory, 1, 1, 1, policy);
  EXPECT_EQ(batch.completed(), 0u);
  ASSERT_EQ(batch.failures.size(), 1u);
  EXPECT_EQ(batch.failures[0].cls, RunErrorClass::kDeadline);
  EXPECT_EQ(batch.failures[0].attempts, 1u);  // retry_deadline=false

  EXPECT_THROW(run_experiment_supervised(factory, 1, 1, 1, policy),
               ReplicateBatchError);
}

TEST(Supervisor, RetryDeadlinePolicyGivesDeadlinesASecondChance) {
  SupervisorPolicy policy;
  policy.deadline_ms = 1;
  policy.max_retries = 1;
  policy.backoff_base_ms = 1;
  policy.retry_deadline = true;
  const SpecFactory factory = [](std::uint64_t) { return heavy_spec(); };
  const SupervisedBatch batch =
      run_replicates_supervised(factory, 1, 1, 1, policy);
  ASSERT_EQ(batch.failures.size(), 1u);
  EXPECT_EQ(batch.failures[0].attempts, 2u);
}

TEST(Supervisor, PreArmedCancelRunsNothing) {
  std::atomic<bool> cancel{true};
  SupervisorPolicy policy;
  policy.cancel = &cancel;
  const SupervisedBatch batch =
      run_replicates_supervised(tiny_factory(), 4, 1, 2, policy);
  EXPECT_TRUE(batch.cancelled);
  EXPECT_EQ(batch.completed(), 0u);
  EXPECT_TRUE(batch.failures.empty());

  try {
    run_experiment_supervised(tiny_factory(), 4, 1, 2, policy);
    FAIL() << "cancelled-empty batch did not throw";
  } catch (const ReplicateBatchError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_NE(e.failures()[0].message.find("cancelled"), std::string::npos);
  }
}

TEST(Supervisor, CancelMidBatchKeepsWhatCompleted) {
  std::atomic<bool> cancel{false};
  std::atomic<std::size_t> done{0};
  SupervisorPolicy policy;
  policy.cancel = &cancel;
  policy.on_progress = [&](std::size_t, std::uint64_t) {
    if (done.fetch_add(1) + 1 >= 2) cancel.store(true);
  };
  const SupervisedBatch batch =
      run_replicates_supervised(tiny_factory(), 8, 1, 1, policy);
  EXPECT_TRUE(batch.cancelled);
  EXPECT_GE(batch.completed(), 2u);
  EXPECT_LT(batch.completed(), 8u);
  // Salvage still aggregates the completed prefix.
  const AggregateResult agg =
      aggregate_supervised(batch, 1.0, 1);
  EXPECT_EQ(agg.repetitions, batch.completed());
}

TEST(Supervisor, SupervisedMatchesUnsupervisedWhenNothingGoesWrong) {
  const SpecFactory factory = tiny_factory();
  const AggregateResult plain = run_experiment(
      factory, ExperimentOptions{6, 9, ExecutionPolicy::threaded(2)});
  SupervisorPolicy policy;
  const AggregateResult supervised =
      run_experiment_supervised(factory, 6, 9, 2, policy);
  EXPECT_TRUE(supervised.same_statistics(plain));
  EXPECT_EQ(supervised.stats_digest(), plain.stats_digest());
}

}  // namespace
}  // namespace hinet
