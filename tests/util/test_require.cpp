// Contract macros and TokenSet raw-word access.
#include <gtest/gtest.h>

#include "util/require.hpp"
#include "util/token_set.hpp"

namespace hinet {
namespace {

TEST(Require, PassingConditionIsSilent) {
  EXPECT_NO_THROW(HINET_REQUIRE(1 + 1 == 2, "math"));
  EXPECT_NO_THROW(HINET_ENSURE(true, ""));
}

TEST(Require, FailureThrowsTypedExceptionWithContext) {
  try {
    HINET_REQUIRE(2 < 1, "expected order");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("expected order"), std::string::npos);
    EXPECT_NE(what.find("test_require.cpp"), std::string::npos);
  }
}

TEST(Require, EnsureThrowsInvariantError) {
  EXPECT_THROW(HINET_ENSURE(false, "broken"), InvariantError);
  // InvariantError and PreconditionError are distinct types.
  EXPECT_THROW(
      {
        try {
          HINET_ENSURE(false, "x");
        } catch (const PreconditionError&) {
          FAIL() << "wrong exception type";
        }
      },
      InvariantError);
}

TEST(Require, MacroIsStatementSafe) {
  // Must compose with if/else without braces.
  if (true)
    HINET_REQUIRE(true, "");
  else
    HINET_REQUIRE(true, "");
  SUCCEED();
}

TEST(TokenSetWords, RawViewMatchesMembership) {
  TokenSet s(130, {0, 63, 64, 129});
  const auto w = s.words();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0], (1ULL << 0) | (1ULL << 63));
  EXPECT_EQ(w[1], 1ULL << 0);
  EXPECT_EQ(w[2], 1ULL << 1);
}

TEST(TokenSetWords, FromWordsRoundTrip) {
  TokenSet s(100, {3, 77, 99});
  const auto w = s.words();
  const TokenSet back =
      TokenSet::from_words(100, {w.begin(), w.end()});
  EXPECT_EQ(back, s);
}

TEST(TokenSetWords, FromWordsMasksTailBits) {
  // Universe 10 needs one word; set bits beyond bit 9 must be dropped.
  const TokenSet s = TokenSet::from_words(10, {~0ULL});
  EXPECT_EQ(s.count(), 10u);
  EXPECT_TRUE(s.full());
}

TEST(TokenSetWords, FromWordsWrongWidthThrows) {
  EXPECT_THROW(TokenSet::from_words(100, {0ULL}), PreconditionError);
  EXPECT_THROW(TokenSet::from_words(10, {0ULL, 0ULL}), PreconditionError);
}

}  // namespace
}  // namespace hinet
