#include "util/token_set.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "util/rng.hpp"

namespace hinet {
namespace {

TEST(TokenSet, StartsEmpty) {
  TokenSet s(10);
  EXPECT_EQ(s.universe(), 10u);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.full());
}

TEST(TokenSet, InitializerList) {
  TokenSet s(8, {0, 3, 7});
  EXPECT_EQ(s.count(), 3u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(1));
}

TEST(TokenSet, InsertReportsNovelty) {
  TokenSet s(4);
  EXPECT_TRUE(s.insert(2));
  EXPECT_FALSE(s.insert(2));
  EXPECT_EQ(s.count(), 1u);
}

TEST(TokenSet, EraseReportsPresence) {
  TokenSet s(4, {1});
  EXPECT_TRUE(s.erase(1));
  EXPECT_FALSE(s.erase(1));
  EXPECT_TRUE(s.empty());
}

TEST(TokenSet, OutOfUniverseThrows) {
  TokenSet s(4);
  EXPECT_THROW(s.insert(4), PreconditionError);
  EXPECT_THROW(s.contains(100), PreconditionError);
}

TEST(TokenSet, FullDetection) {
  TokenSet s(3, {0, 1, 2});
  EXPECT_TRUE(s.full());
  s.erase(1);
  EXPECT_FALSE(s.full());
}

TEST(TokenSet, ClearEmpties) {
  TokenSet s(70, {0, 69});
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(TokenSet, UniteCountsNewTokens) {
  TokenSet a(8, {0, 1});
  TokenSet b(8, {1, 2, 3});
  EXPECT_EQ(a.unite(b), 2u);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.unite(b), 0u);
}

TEST(TokenSet, UniteUniverseMismatchThrows) {
  TokenSet a(8);
  TokenSet b(9);
  EXPECT_THROW(a.unite(b), PreconditionError);
}

TEST(TokenSet, SubtractAndIntersect) {
  TokenSet a(8, {0, 1, 2, 3});
  TokenSet b(8, {2, 3, 4});
  TokenSet c = a;
  c.subtract(b);
  EXPECT_EQ(c, TokenSet(8, {0, 1}));
  TokenSet d = a;
  d.intersect(b);
  EXPECT_EQ(d, TokenSet(8, {2, 3}));
}

TEST(TokenSet, SubsetOf) {
  TokenSet a(8, {1, 2});
  TokenSet b(8, {0, 1, 2, 5});
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(a.subset_of(a));
  EXPECT_TRUE(TokenSet(8).subset_of(a));
}

TEST(TokenSet, MinDiffImplementsHeadRule) {
  // Algorithm 1 head rule: t <- min(TA \ TS).
  TokenSet ta(8, {1, 4, 6});
  TokenSet ts(8, {1});
  EXPECT_EQ(ta.min_diff(ts), std::optional<TokenId>(4));
  ts.insert(4);
  EXPECT_EQ(ta.min_diff(ts), std::optional<TokenId>(6));
  ts.insert(6);
  EXPECT_EQ(ta.min_diff(ts), std::nullopt);
}

TEST(TokenSet, MaxDiffImplementsMemberRule) {
  // Algorithm 1 member rule: t <- max(TA \ (TS ∪ TR)).
  TokenSet ta(8, {0, 3, 5});
  TokenSet ts(8, {5});
  TokenSet tr(8, {0});
  EXPECT_EQ(ta.max_diff(ts, tr), std::optional<TokenId>(3));
  tr.insert(3);
  EXPECT_EQ(ta.max_diff(ts, tr), std::nullopt);
}

TEST(TokenSet, MaxDiffSingleArgument) {
  TokenSet ta(8, {0, 3, 5});
  TokenSet ts(8, {5});
  EXPECT_EQ(ta.max_diff(ts), std::optional<TokenId>(3));
}

TEST(TokenSet, MinMaxElements) {
  TokenSet s(130, {5, 64, 129});
  EXPECT_EQ(s.min_element(), std::optional<TokenId>(5));
  EXPECT_EQ(s.max_element(), std::optional<TokenId>(129));
  EXPECT_EQ(TokenSet(4).min_element(), std::nullopt);
  EXPECT_EQ(TokenSet(4).max_element(), std::nullopt);
}

TEST(TokenSet, CrossWordBoundaries) {
  TokenSet s(200);
  for (TokenId t : {63u, 64u, 127u, 128u, 199u}) s.insert(t);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(199));
  TokenSet empty(200);
  EXPECT_EQ(s.min_diff(empty), std::optional<TokenId>(63));
  EXPECT_EQ(s.max_diff(empty), std::optional<TokenId>(199));
}

TEST(TokenSet, ToVectorSortedAscending) {
  TokenSet s(100, {99, 0, 50});
  const auto v = s.to_vector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 0u);
  EXPECT_EQ(v[1], 50u);
  EXPECT_EQ(v[2], 99u);
}

TEST(TokenSet, ToStringFormat) {
  EXPECT_EQ(TokenSet(8, {0, 3, 7}).to_string(), "{0,3,7}");
  EXPECT_EQ(TokenSet(8).to_string(), "{}");
}

TEST(TokenSet, SetUnionValueSemantics) {
  TokenSet a(8, {0});
  TokenSet b(8, {7});
  const TokenSet u = TokenSet::set_union(a, b);
  EXPECT_EQ(u, TokenSet(8, {0, 7}));
  EXPECT_EQ(a, TokenSet(8, {0}));  // inputs untouched
}

TEST(TokenSet, EqualityRequiresSameUniverse) {
  EXPECT_FALSE(TokenSet(8) == TokenSet(9));
  EXPECT_TRUE(TokenSet(8) == TokenSet(8));
}

TEST(TokenSet, ZeroUniverseIsDegenerateButSafe) {
  TokenSet s(0);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.full());  // vacuous
  EXPECT_EQ(s.min_element(), std::nullopt);
}

// Property sweep: set-algebra identities over random sets.
class TokenSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TokenSetProperty, AlgebraIdentities) {
  Rng rng(GetParam());
  const std::size_t universe = 1 + rng.below(300);
  auto random_set = [&] {
    TokenSet s(universe);
    const std::size_t fill = rng.below(universe + 1);
    for (std::size_t i = 0; i < fill; ++i) {
      s.insert(static_cast<TokenId>(rng.below(universe)));
    }
    return s;
  };
  const TokenSet a = random_set();
  const TokenSet b = random_set();

  // |A ∪ B| = |A| + |B \ A|
  TokenSet u = a;
  const std::size_t added = u.unite(b);
  TokenSet b_minus_a = b;
  b_minus_a.subtract(a);
  EXPECT_EQ(added, b_minus_a.count());
  EXPECT_EQ(u.count(), a.count() + b_minus_a.count());

  // A \ B and A ∩ B partition A.
  TokenSet diff = a;
  diff.subtract(b);
  TokenSet inter = a;
  inter.intersect(b);
  EXPECT_EQ(diff.count() + inter.count(), a.count());

  // min/max of difference agree with the vector view.
  TokenSet empty(universe);
  const auto vec = a.to_vector();
  if (vec.empty()) {
    EXPECT_EQ(a.min_diff(empty), std::nullopt);
  } else {
    EXPECT_EQ(a.min_diff(empty), std::optional<TokenId>(vec.front()));
    EXPECT_EQ(a.max_diff(empty), std::optional<TokenId>(vec.back()));
  }

  // subset relations.
  EXPECT_TRUE(inter.subset_of(a));
  EXPECT_TRUE(inter.subset_of(b));
  EXPECT_TRUE(a.subset_of(u));
}

TEST_P(TokenSetProperty, CachedCountMatchesRecomputedPopcount) {
  // count()/full()/empty() are served from a cached cardinality; this
  // drives arbitrary interleavings of every mutator and checks the cache
  // against a popcount recomputed from the raw words after each step.
  Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 3);
  const std::size_t universe = 1 + rng.below(130);

  const auto recount = [](const TokenSet& s) {
    std::size_t n = 0;
    for (std::uint64_t w : s.words()) {
      n += static_cast<std::size_t>(std::popcount(w));
    }
    return n;
  };
  const auto check = [&](const TokenSet& s) {
    const std::size_t truth = recount(s);
    ASSERT_EQ(s.count(), truth);
    ASSERT_EQ(s.empty(), truth == 0);
    ASSERT_EQ(s.full(), truth == s.universe());
  };

  const auto random_set = [&] {
    TokenSet s(universe);
    const std::size_t fill = rng.below(universe + 1);
    for (std::size_t i = 0; i < fill; ++i) {
      s.insert(static_cast<TokenId>(rng.below(universe)));
    }
    return s;
  };

  TokenSet s = random_set();
  check(s);
  for (int step = 0; step < 300; ++step) {
    switch (rng.below(7)) {
      case 0:
        s.insert(static_cast<TokenId>(rng.below(universe)));
        break;
      case 1:
        s.erase(static_cast<TokenId>(rng.below(universe)));
        break;
      case 2:
        s.clear();
        break;
      case 3:
        s.unite(random_set());
        break;
      case 4:
        s.subtract(random_set());
        break;
      case 5:
        s.intersect(random_set());
        break;
      case 6: {
        std::vector<std::uint64_t> words((universe + 63) / 64);
        for (auto& w : words) w = rng();
        s = TokenSet::from_words(universe, std::move(words));
        break;
      }
    }
    check(s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenSetProperty,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace hinet
