#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace hinet {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator a;
  a.add(3.5);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.mean(), 3.5);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.min(), 3.5);
  EXPECT_EQ(a.max(), 3.5);
}

TEST(Accumulator, KnownMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, NumericallyStableForLargeOffsets) {
  Accumulator a;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) a.add(x);
  EXPECT_NEAR(a.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(a.variance(), 1.0, 1e-6);
}

TEST(Percentile, EndpointsAndMedian) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 2.5);
}

TEST(Percentile, SingleElement) {
  std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.3), 7.0);
}

TEST(Percentile, EmptyThrows) {
  std::vector<double> v;
  EXPECT_THROW(percentile_sorted(v, 0.5), PreconditionError);
}

TEST(Percentile, OutOfRangeQThrows) {
  std::vector<double> v{1.0};
  EXPECT_THROW(percentile_sorted(v, -0.1), PreconditionError);
  EXPECT_THROW(percentile_sorted(v, 1.1), PreconditionError);
}

TEST(Summarize, EmptySampleGivesZeros) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, UnsortedInputHandled) {
  const Summary s = summarize({5.0, 1.0, 3.0});
  EXPECT_EQ(s.n, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Summarize, MatchesAccumulatorOnRandomData) {
  Rng rng(77);
  std::vector<double> samples;
  Accumulator acc;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform_real(-10.0, 10.0);
    samples.push_back(x);
    acc.add(x);
  }
  const Summary s = summarize(samples);
  EXPECT_NEAR(s.mean, acc.mean(), 1e-9);
  EXPECT_NEAR(s.stddev, acc.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(s.min, acc.min());
  EXPECT_DOUBLE_EQ(s.max, acc.max());
}

TEST(Summary, ToStringMentionsFields) {
  const Summary s = summarize({1.0, 2.0});
  const std::string str = s.to_string();
  EXPECT_NE(str.find("mean="), std::string::npos);
  EXPECT_NE(str.find("p95="), std::string::npos);
}

}  // namespace
}  // namespace hinet
