#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace hinet {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng a(0);
  // SplitMix expansion must avoid the all-zero xoshiro state.
  bool any_nonzero = false;
  for (int i = 0; i < 8; ++i) {
    if (a() != 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(13);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.below(0), PreconditionError);
}

TEST(Rng, BelowCoversFullRange) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntInvertedRangeThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(2, 1), PreconditionError);
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsRoughlyHalf) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleSmallVectorsNoop) {
  Rng rng(31);
  std::vector<int> empty;
  std::vector<int> one{42};
  rng.shuffle(empty);
  rng.shuffle(one);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, SampleDistinctAndInRange) {
  Rng rng(37);
  const auto s = rng.sample(10, 6);
  EXPECT_EQ(s.size(), 6u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 6u);
  for (auto x : s) EXPECT_LT(x, 10u);
}

TEST(Rng, SampleWholePopulation) {
  Rng rng(41);
  const auto s = rng.sample(5, 5);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, SampleTooLargeThrows) {
  Rng rng(41);
  EXPECT_THROW(rng.sample(3, 4), PreconditionError);
}

TEST(Rng, PickFromEmptyThrows) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), PreconditionError);
}

TEST(Rng, ForkDecorrelatesFromParent) {
  Rng parent(55);
  Rng child = parent.fork();
  // Child and parent streams should differ immediately.
  EXPECT_NE(parent(), child());
}

TEST(Rng, ForksFromSameStateAreReproducible) {
  Rng a(55);
  Rng b(55);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ca(), cb());
}

}  // namespace
}  // namespace hinet
