// Tests for TextTable, CsvWriter, CliArgs and the logging layer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace hinet {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"model", "time"});
  t.add("alpha", 12);
  t.add("a-much-longer-name", 3);
  const std::string out = t.render();
  EXPECT_NE(out.find("| model"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // All lines share one width.
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), PreconditionError);
}

TEST(TextTable, NumericFormatting) {
  TextTable t({"v"});
  t.add(3.0);       // integral double -> no decimals
  t.add(3.14159);   // fractional -> fixed precision
  t.add(42);
  const std::string out = t.render();
  EXPECT_NE(out.find("| 3 "), std::string::npos);
  EXPECT_NE(out.find("3.142"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(CsvWriter, InMemoryRoundTrip) {
  CsvWriter w({"a", "b"});
  w.row(1, "x");
  w.row(2.5, "y,z");
  EXPECT_EQ(w.rows_written(), 2u);
  EXPECT_EQ(w.content(), "a,b\n1,x\n2.5,\"y,z\"\n");
}

TEST(CsvWriter, EscapesQuotesAndNewlines) {
  CsvWriter w({"c"});
  w.row("say \"hi\"");
  EXPECT_NE(w.content().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(CsvWriter, WidthMismatchThrows) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.write_row({"only-one"}), PreconditionError);
}

TEST(CsvWriter, FileModeWrites) {
  const std::string path = ::testing::TempDir() + "/hinet_csv_test.csv";
  {
    CsvWriter w(path, {"h"});
    w.row(7);
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "h\n7\n");
  std::remove(path.c_str());
}

TEST(CliArgs, ParsesTypedValues) {
  const char* argv[] = {"prog", "--n=42", "--rate=0.5", "--verbose",
                        "--name=trace"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_int("n", 0, ""), 42);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0, ""), 0.5);
  EXPECT_TRUE(args.get_bool("verbose", false, ""));
  EXPECT_EQ(args.get_string("name", "", ""), "trace");
}

TEST(CliArgs, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("n", 7, ""), 7);
  EXPECT_FALSE(args.get_bool("flag", false, ""));
}

TEST(CliArgs, HelpFlagDetected) {
  const char* argv[] = {"prog", "--help"};
  CliArgs args(2, argv);
  EXPECT_TRUE(args.help_requested());
}

TEST(CliArgs, MalformedTokenThrows) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(CliArgs(2, argv), std::invalid_argument);
}

TEST(CliArgs, BadIntThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.get_int("n", 0, ""), std::invalid_argument);
}

TEST(CliArgs, BadBoolThrows) {
  const char* argv[] = {"prog", "--b=maybe"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.get_bool("b", false, ""), std::invalid_argument);
}

TEST(CliArgs, UnknownOptionsReported) {
  const char* argv[] = {"prog", "--known=1", "--typo=2"};
  CliArgs args(3, argv);
  args.get_int("known", 0, "");
  const auto unknown = args.unknown_options();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(CliArgs, UsageListsRegisteredOptions) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  args.get_int("nodes", 100, "node count");
  const std::string usage = args.usage("test program");
  EXPECT_NE(usage.find("--nodes"), std::string::npos);
  EXPECT_NE(usage.find("node count"), std::string::npos);
  EXPECT_NE(usage.find("default: 100"), std::string::npos);
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_sink_ = Logging::set_sink(&captured_);
    prev_level_ = Logging::threshold();
  }
  void TearDown() override {
    Logging::set_sink(prev_sink_);
    Logging::set_threshold(prev_level_);
  }
  std::ostringstream captured_;
  std::ostream* prev_sink_ = nullptr;
  LogLevel prev_level_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, ThresholdSuppressesLowerLevels) {
  Logging::set_threshold(LogLevel::kWarn);
  HINET_INFO("test") << "hidden";
  HINET_WARN("test") << "visible";
  const std::string out = captured_.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
}

TEST_F(LoggingTest, FormatsLevelAndTag) {
  Logging::set_threshold(LogLevel::kDebug);
  HINET_DEBUG("engine") << "round " << 3;
  EXPECT_NE(captured_.str().find("[DEBUG] [engine] round 3"),
            std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logging::set_threshold(LogLevel::kOff);
  HINET_ERROR("x") << "nope";
  EXPECT_TRUE(captured_.str().empty());
}

TEST(LogLevelParse, RoundTrip) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_THROW(parse_log_level("loud"), std::invalid_argument);
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
}

}  // namespace
}  // namespace hinet
