#include "cluster/algorithms.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace hinet {
namespace {

// Shared invariants every clustering of a graph must satisfy.
void expect_valid_clustering(const HierarchyView& h, const Graph& g,
                             bool heads_independent) {
  EXPECT_EQ(h.validate(g), "");
  // Every node with at least one neighbour must be affiliated or a head
  // (the schemes produce dominating sets).
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (h.is_head(v)) continue;
    EXPECT_NE(h.cluster_of(v), kNoCluster) << "node " << v << " unaffiliated";
  }
  if (heads_independent) {
    // Capture-style schemes produce an independent set of heads.
    const auto heads = h.heads();
    for (std::size_t i = 0; i < heads.size(); ++i) {
      for (std::size_t j = i + 1; j < heads.size(); ++j) {
        EXPECT_FALSE(g.has_edge(heads[i], heads[j]))
            << "heads " << heads[i] << " and " << heads[j] << " adjacent";
      }
    }
  }
}

TEST(LowestId, StarPicksHub) {
  const Graph g = gen::star(5);
  const HierarchyView h = lowest_id_clustering(g);
  EXPECT_TRUE(h.is_head(0));
  EXPECT_EQ(h.head_count(), 1u);
  expect_valid_clustering(h, g, true);
}

TEST(LowestId, PathAlternates) {
  const Graph g = gen::path(5);  // 0-1-2-3-4
  const HierarchyView h = lowest_id_clustering(g);
  // Scan: 0 heads, captures 1; 2 heads, captures 3; 4 heads.
  EXPECT_TRUE(h.is_head(0));
  EXPECT_TRUE(h.is_head(2));
  EXPECT_TRUE(h.is_head(4));
  EXPECT_EQ(h.cluster_of(1), 0u);
  EXPECT_EQ(h.cluster_of(3), 2u);
  expect_valid_clustering(h, g, true);
}

TEST(LowestId, GatewaysMarkedOnClusterBoundary) {
  const Graph g = gen::path(5);
  const HierarchyView h = lowest_id_clustering(g);
  // Node 1 neighbours head 2 (different cluster) -> gateway; same for 3.
  EXPECT_EQ(h.role(1), NodeRole::kGateway);
  EXPECT_EQ(h.role(3), NodeRole::kGateway);
}

TEST(LowestId, IsolatedNodesBecomeSingletonHeads) {
  Graph g(3);  // no edges
  const HierarchyView h = lowest_id_clustering(g);
  EXPECT_EQ(h.head_count(), 3u);
}

TEST(HighestDegree, PicksHighestDegreeFirst) {
  // Node 3 has the highest degree in this graph.
  Graph g(6, {{3, 0}, {3, 1}, {3, 2}, {3, 4}, {4, 5}});
  const HierarchyView h = highest_degree_clustering(g);
  EXPECT_TRUE(h.is_head(3));
  EXPECT_EQ(h.cluster_of(0), 3u);
  expect_valid_clustering(h, g, true);
}

TEST(HighestDegree, TieBreaksByLowerId) {
  const Graph g = gen::ring(4);  // all degree 2
  const HierarchyView h = highest_degree_clustering(g);
  EXPECT_TRUE(h.is_head(0));
}

TEST(Wcds, ProducesDominatingSet) {
  Rng rng(5);
  const Graph g = gen::random_connected(30, 20, rng);
  const HierarchyView h = wcds_clustering(g);
  EXPECT_EQ(h.validate(g), "");
  for (NodeId v = 0; v < 30; ++v) {
    if (h.is_head(v)) continue;
    // Dominated: has a neighbouring head.
    bool dominated = false;
    for (NodeId u : g.neighbors(v)) dominated |= h.is_head(u);
    EXPECT_TRUE(dominated) << "node " << v;
  }
}

TEST(Wcds, GreedyIsSmallOnStar) {
  const Graph g = gen::star(10);
  const HierarchyView h = wcds_clustering(g);
  EXPECT_EQ(h.head_count(), 1u);
  EXPECT_TRUE(h.is_head(0));
}

TEST(Wcds, HandlesIsolatedNodes) {
  Graph g(4, {{0, 1}});
  const HierarchyView h = wcds_clustering(g);
  EXPECT_EQ(h.validate(g), "");
  EXPECT_TRUE(h.is_head(2) || h.cluster_of(2) != kNoCluster);
  EXPECT_TRUE(h.is_head(3) || h.cluster_of(3) != kNoCluster);
}

TEST(MarkGateways, Idempotent) {
  const Graph g = gen::path(5);
  HierarchyView h = lowest_id_clustering(g);
  const HierarchyView before = h;
  mark_gateways(h, g);
  EXPECT_TRUE(h == before);
}

TEST(MeasureLHop, FewerThanTwoHeadsIsZero) {
  const Graph g = gen::star(4);
  const HierarchyView h = lowest_id_clustering(g);
  ASSERT_EQ(h.head_count(), 1u);
  EXPECT_EQ(measure_l_hop_connectivity(h, g), 0);
}

TEST(MeasureLHop, ChainOfHeadsThroughGateways) {
  // head 0 - gw 1 - head 2 - gw 3 - head 4 : adjacent heads at distance 2.
  const Graph g = gen::path(5);
  HierarchyView h(5);
  h.set_head(0);
  h.set_head(2);
  h.set_head(4);
  h.set_member(1, 0, true);
  h.set_member(3, 2, true);
  EXPECT_EQ(measure_l_hop_connectivity(h, g), 2);
}

TEST(MeasureLHop, AdjacentHeadsGiveOne) {
  Graph g(2, {{0, 1}});
  HierarchyView h(2);
  h.set_head(0);
  h.set_head(1);
  EXPECT_EQ(measure_l_hop_connectivity(h, g), 1);
}

TEST(MeasureLHop, DisconnectedBackboneIsMinusOne) {
  Graph g(4, {{0, 1}, {2, 3}});
  HierarchyView h(4);
  h.set_head(0);
  h.set_head(2);
  // Members 1 and 3 are NOT gateways: backbone = heads only, disconnected.
  h.set_member(1, 0);
  h.set_member(3, 2);
  EXPECT_EQ(measure_l_hop_connectivity(h, g), -1);
}

TEST(MeasureLHop, PathOnlyThroughMembersDoesNotCount) {
  // Heads 0 and 2 connected through member 1 which is NOT a gateway.
  const Graph g = gen::path(3);
  HierarchyView h(3);
  h.set_head(0);
  h.set_head(2);
  h.set_member(1, 0);  // plain member
  EXPECT_EQ(measure_l_hop_connectivity(h, g), -1);
  h.mark_gateway(1);
  EXPECT_EQ(measure_l_hop_connectivity(h, g), 2);
}

// Property sweep: all three schemes on random connected graphs.
class ClusteringProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusteringProperty, AllSchemesProduceValidDominatingClusterings) {
  Rng rng(GetParam());
  const std::size_t n = 5 + rng.below(60);
  const Graph g = gen::random_connected(n, rng.below(2 * n), rng);
  expect_valid_clustering(lowest_id_clustering(g), g, true);
  expect_valid_clustering(highest_degree_clustering(g), g, true);
  const HierarchyView w = wcds_clustering(g);
  EXPECT_EQ(w.validate(g), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusteringProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace hinet
