#include "cluster/hierarchy.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace hinet {
namespace {

TEST(HierarchyView, DefaultIsUnaffiliatedMembers) {
  HierarchyView h(4);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(h.role(v), NodeRole::kMember);
    EXPECT_EQ(h.cluster_of(v), kNoCluster);
  }
  EXPECT_TRUE(h.heads().empty());
  EXPECT_EQ(h.member_count(), 0u);  // unaffiliated members don't count
}

TEST(HierarchyView, HeadIsItsOwnCluster) {
  HierarchyView h(4);
  h.set_head(2);
  EXPECT_TRUE(h.is_head(2));
  EXPECT_EQ(h.cluster_of(2), 2u);
  EXPECT_EQ(h.heads(), std::vector<NodeId>{2});
}

TEST(HierarchyView, MemberAffiliation) {
  HierarchyView h(4);
  h.set_head(0);
  h.set_member(1, 0);
  h.set_member(2, 0, /*gateway=*/true);
  EXPECT_EQ(h.role(1), NodeRole::kMember);
  EXPECT_EQ(h.role(2), NodeRole::kGateway);
  EXPECT_EQ(h.cluster_of(1), 0u);
  EXPECT_EQ(h.cluster_of(2), 0u);
  // members_of includes head, member and gateway.
  EXPECT_EQ(h.members_of(0), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(h.member_count(), 1u);
  EXPECT_EQ(h.gateway_count(), 1u);
  EXPECT_EQ(h.head_count(), 1u);
}

TEST(HierarchyView, AffiliationToNonHeadThrows) {
  HierarchyView h(4);
  EXPECT_THROW(h.set_member(1, 0), PreconditionError);
  h.set_head(0);
  EXPECT_THROW(h.set_member(0, 0), PreconditionError);  // self-membership
}

TEST(HierarchyView, MarkGatewayPreservesAffiliation) {
  HierarchyView h(3);
  h.set_head(0);
  h.set_member(1, 0);
  h.mark_gateway(1);
  EXPECT_EQ(h.role(1), NodeRole::kGateway);
  EXPECT_EQ(h.cluster_of(1), 0u);
  EXPECT_THROW(h.mark_gateway(0), PreconditionError);  // heads can't demote
}

TEST(HierarchyView, UnaffiliatedGateway) {
  HierarchyView h(3);
  h.set_unaffiliated_gateway(1);
  EXPECT_EQ(h.role(1), NodeRole::kGateway);
  EXPECT_EQ(h.cluster_of(1), kNoCluster);
}

TEST(HierarchyView, BackboneIsHeadsPlusGateways) {
  HierarchyView h(5);
  h.set_head(0);
  h.set_member(1, 0);
  h.set_member(2, 0, true);
  h.set_unaffiliated_gateway(3);
  EXPECT_EQ(h.backbone(), (std::vector<NodeId>{0, 2, 3}));
}

TEST(HierarchyView, ValidateAcceptsOneHopClusters) {
  const Graph g = gen::star(4);  // 0 hub
  HierarchyView h(4);
  h.set_head(0);
  for (NodeId v = 1; v < 4; ++v) h.set_member(v, 0);
  EXPECT_EQ(h.validate(g), "");
}

TEST(HierarchyView, ValidateRejectsNonNeighbourMember) {
  const Graph g = gen::path(3);  // 0-1-2
  HierarchyView h(3);
  h.set_head(0);
  h.set_member(2, 0);  // 2 is not adjacent to 0
  EXPECT_NE(h.validate(g), "");
}

TEST(HierarchyView, ValidateRejectsNodeCountMismatch) {
  HierarchyView h(3);
  EXPECT_NE(h.validate(Graph(4)), "");
}

TEST(HierarchyView, ValidateAllowsUnaffiliated) {
  const Graph g = gen::path(3);
  HierarchyView h(3);
  h.set_head(1);
  EXPECT_EQ(h.validate(g), "");  // nodes 0, 2 unaffiliated — allowed
}

TEST(HierarchyView, RoleNames) {
  EXPECT_STREQ(node_role_name(NodeRole::kHead), "head");
  EXPECT_STREQ(node_role_name(NodeRole::kGateway), "gateway");
  EXPECT_STREQ(node_role_name(NodeRole::kMember), "member");
}

TEST(HierarchySequence, ClampsPastEnd) {
  HierarchyView a(3);
  a.set_head(0);
  HierarchyView b(3);
  b.set_head(1);
  HierarchySequence seq({a, b});
  EXPECT_EQ(seq.round_count(), 2u);
  EXPECT_TRUE(seq.hierarchy_at(0).is_head(0));
  EXPECT_TRUE(seq.hierarchy_at(1).is_head(1));
  EXPECT_TRUE(seq.hierarchy_at(50).is_head(1));
}

TEST(HierarchySequence, RejectsEmptyAndMismatch) {
  EXPECT_THROW(HierarchySequence({}), PreconditionError);
  HierarchySequence seq({HierarchyView(3)});
  EXPECT_THROW(seq.push_back(HierarchyView(4)), PreconditionError);
  seq.push_back(HierarchyView(3));
  EXPECT_EQ(seq.round_count(), 2u);
}

}  // namespace
}  // namespace hinet
