// d-hop (multi-hop) clustering — the Section VI future-work extension.
#include "cluster/dhop.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace hinet {
namespace {

TEST(GreedyDhop, RadiusOneMatchesOneHopCapture) {
  const Graph g = gen::path(5);
  const HierarchyView h = greedy_dhop_clustering(g, 1);
  // Same capture pattern as lowest-ID clustering: heads 0, 2, 4.
  EXPECT_TRUE(h.is_head(0));
  EXPECT_TRUE(h.is_head(2));
  EXPECT_TRUE(h.is_head(4));
  EXPECT_EQ(h.validate(g, 1), "");
}

TEST(GreedyDhop, LargerRadiusMeansFewerHeads) {
  const Graph g = gen::path(9);
  const HierarchyView h1 = greedy_dhop_clustering(g, 1);
  const HierarchyView h2 = greedy_dhop_clustering(g, 2);
  const HierarchyView h4 = greedy_dhop_clustering(g, 4);
  EXPECT_GT(h1.head_count(), h2.head_count());
  EXPECT_GT(h2.head_count(), h4.head_count());
  // Radius 4 covers a 9-path from node 0 plus one more head.
  EXPECT_EQ(h4.head_count(), 2u);
}

TEST(GreedyDhop, MembersWithinDHops) {
  Rng rng(3);
  const Graph g = gen::random_connected(40, 30, rng);
  for (std::size_t d : {1u, 2u, 3u}) {
    const HierarchyView h = greedy_dhop_clustering(g, d);
    EXPECT_EQ(h.validate(g, d), "") << "d=" << d;
  }
}

TEST(GreedyDhop, RejectsZeroRadius) {
  EXPECT_THROW(greedy_dhop_clustering(Graph(3), 0), PreconditionError);
}

TEST(MaxMinDhop, SinglePathStructure) {
  const Graph g = gen::path(7);
  const HierarchyView h = maxmin_dhop_clustering(g, 2);
  EXPECT_EQ(h.validate(g, 2), "");
  EXPECT_GE(h.head_count(), 1u);
  // Every non-head is affiliated.
  for (NodeId v = 0; v < 7; ++v) {
    if (!h.is_head(v)) {
      EXPECT_NE(h.cluster_of(v), kNoCluster);
    }
  }
}

TEST(MaxMinDhop, CompleteGraphSingleCluster) {
  const Graph g = gen::complete(8);
  const HierarchyView h = maxmin_dhop_clustering(g, 1);
  EXPECT_EQ(h.head_count(), 1u);
  // Max-Min elects the largest id on a clique (floodmax floods id 7,
  // floodmin returns it to 7 itself).
  EXPECT_TRUE(h.is_head(7));
}

TEST(MaxMinDhop, IsolatedNodesHeadThemselves) {
  Graph g(4, {{0, 1}});
  const HierarchyView h = maxmin_dhop_clustering(g, 2);
  EXPECT_TRUE(h.is_head(2));
  EXPECT_TRUE(h.is_head(3));
  EXPECT_EQ(h.validate(g, 2), "");
}

TEST(MeasureDhop, ReportsRadiusAndSizes) {
  const Graph g = gen::star(7);
  const HierarchyView h = greedy_dhop_clustering(g, 1);
  const DhopStats s = measure_dhop(h, g);
  EXPECT_EQ(s.heads, 1u);
  EXPECT_EQ(s.max_radius, 1u);
  EXPECT_DOUBLE_EQ(s.mean_cluster_size, 7.0);
  EXPECT_EQ(s.gateways, 0u);
}

// Property sweep: both schemes produce valid d-hop clusterings whose
// measured radius respects d, on random connected graphs.
struct DhopCase {
  std::size_t n, extra, d;
  std::uint64_t seed;
};

class DhopSweep : public ::testing::TestWithParam<DhopCase> {};

TEST_P(DhopSweep, BothSchemesValidAndWithinRadius) {
  const DhopCase c = GetParam();
  Rng rng(c.seed);
  const Graph g = gen::random_connected(c.n, c.extra, rng);
  for (const HierarchyView& h : {greedy_dhop_clustering(g, c.d),
                                 maxmin_dhop_clustering(g, c.d)}) {
    EXPECT_EQ(h.validate(g, c.d), "");
    const DhopStats s = measure_dhop(h, g);
    EXPECT_LE(s.max_radius, c.d);
    EXPECT_GE(s.heads, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DhopSweep,
    ::testing::Values(DhopCase{15, 10, 1, 1}, DhopCase{15, 10, 2, 2},
                      DhopCase{30, 25, 2, 3}, DhopCase{30, 25, 3, 4},
                      DhopCase{50, 60, 2, 5}, DhopCase{50, 60, 4, 6},
                      DhopCase{24, 0, 3, 7}, DhopCase{40, 100, 2, 8}));

// Fewer heads than 1-hop clustering on the same graph (the point of
// multi-hop clusters: cheaper hierarchy).
TEST(DhopComparison, DeeperClustersShrinkTheBackbone) {
  Rng rng(11);
  const Graph g = gen::random_connected(60, 40, rng);
  const std::size_t h1 = greedy_dhop_clustering(g, 1).head_count();
  const std::size_t h3 = greedy_dhop_clustering(g, 3).head_count();
  EXPECT_LT(h3, h1);
}

}  // namespace
}  // namespace hinet
