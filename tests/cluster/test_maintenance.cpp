#include "cluster/maintenance.hpp"

#include <gtest/gtest.h>

#include "cluster/metrics.hpp"
#include "graph/adversary.hpp"
#include "graph/generators.hpp"
#include "graph/markovian.hpp"
#include "util/rng.hpp"

namespace hinet {
namespace {

TEST(Maintenance, StableGraphKeepsHierarchy) {
  const Graph g = gen::star(6);
  ClusterMaintainer maint(g);
  const HierarchyView initial = maint.view();
  for (int i = 0; i < 5; ++i) {
    maint.step(g);
  }
  EXPECT_TRUE(maint.view() == initial);
  EXPECT_EQ(maint.stats().reaffiliations, 0u);
  EXPECT_EQ(maint.stats().head_promotions, 0u);
  EXPECT_EQ(maint.stats().head_abdications, 0u);
  EXPECT_EQ(maint.stats().rounds, 5u);
}

TEST(Maintenance, OrphanedMemberReaffiliates) {
  // 1 is a member of head 0; when the 0-1 edge breaks and 1 touches head
  // 2, it must re-affiliate.
  Graph g0(3, {{0, 1}, {0, 2}});
  ClusterMaintainer maint(g0);  // lowest-id: 0 heads, 1 and 2 members
  ASSERT_EQ(maint.view().cluster_of(1), 0u);

  Graph g1(3, {{0, 2}, {1, 2}});  // 1 lost its head link
  // 2 is not a head, so 1 cannot join it; 1 must promote itself.
  maint.step(g1);
  EXPECT_TRUE(maint.view().is_head(1));
  EXPECT_EQ(maint.stats().head_promotions, 1u);
}

TEST(Maintenance, OrphanJoinsAnotherHeadWhenPossible) {
  // Two stars: head 0 with member 2; node 1 is a head (isolated initially).
  Graph g0(3, {{0, 2}});
  ClusterMaintainer maint(g0);
  ASSERT_TRUE(maint.view().is_head(0));
  ASSERT_TRUE(maint.view().is_head(1));  // isolated -> own head
  ASSERT_EQ(maint.view().cluster_of(2), 0u);

  // 2 loses its link to 0 but gains one to head 1.
  Graph g1(3, {{1, 2}});
  maint.step(g1);
  EXPECT_EQ(maint.view().cluster_of(2), 1u);
  EXPECT_EQ(maint.stats().reaffiliations, 1u);
  EXPECT_EQ(maint.stats().per_node_reaffiliations[2], 1u);
}

TEST(Maintenance, AdjacentHeadsMerge) {
  // Heads 0 and 1 in separate components; an edge appears between them:
  // the larger id abdicates and joins the smaller.
  Graph g0(2);
  ClusterMaintainer maint(g0);
  ASSERT_TRUE(maint.view().is_head(0));
  ASSERT_TRUE(maint.view().is_head(1));

  Graph g1(2, {{0, 1}});
  maint.step(g1);
  EXPECT_TRUE(maint.view().is_head(0));
  EXPECT_FALSE(maint.view().is_head(1));
  EXPECT_EQ(maint.view().cluster_of(1), 0u);
  EXPECT_EQ(maint.stats().head_abdications, 1u);
}

TEST(Maintenance, LeastClusterChangeKeepsAffiliationWhenLinkSurvives) {
  // Member 3 adjacent to heads 0 and 2; initially captured by 0.  When a
  // lower-id head stays reachable, 3 must NOT churn to head 2.
  Graph g0(4, {{0, 3}, {0, 1}, {2, 3}});
  // lowest-id: 0 heads {1,3}; 2 heads {} ... verify then evolve.
  ClusterMaintainer maint(g0);
  ASSERT_EQ(maint.view().cluster_of(3), 0u);
  // Keep both of 3's links alive; node 1 loses its head link and churns,
  // but 3 must stay with head 0 (least cluster change).
  Graph g1(4, {{0, 3}, {2, 3}, {1, 2}});
  maint.step(g1);
  EXPECT_EQ(maint.view().cluster_of(3), 0u);
  EXPECT_EQ(maint.stats().per_node_reaffiliations[3], 0u);
}

TEST(Maintenance, EveryRoundViewIsValid) {
  AdversaryConfig cfg;
  cfg.nodes = 25;
  cfg.interval = 3;
  cfg.rounds = 30;
  cfg.churn_edges = 6;
  cfg.seed = 11;
  GraphSequence net = make_t_interval_trace(cfg);
  ClusterMaintainer maint(net.graph_at(0));
  for (Round r = 1; r < 30; ++r) {
    const HierarchyView& v = maint.step(net.graph_at(r));
    EXPECT_EQ(v.validate(net.graph_at(r)), "") << "round " << r;
  }
}

TEST(Maintenance, NodeCountChangeRejected) {
  ClusterMaintainer maint(Graph(3));
  EXPECT_THROW(maint.step(Graph(4)), PreconditionError);
}

TEST(MaintainOver, ProducesFullHierarchySequence) {
  AdversaryConfig cfg;
  cfg.nodes = 15;
  cfg.interval = 2;
  cfg.rounds = 12;
  cfg.churn_edges = 4;
  cfg.seed = 3;
  GraphSequence net = make_t_interval_trace(cfg);
  MaintainedHierarchy mh = maintain_over(net, 12);
  EXPECT_EQ(mh.hierarchy.round_count(), 12u);
  EXPECT_EQ(mh.stats.rounds, 11u);  // 11 steps after the initial clustering
  for (Round r = 0; r < 12; ++r) {
    EXPECT_EQ(mh.hierarchy.hierarchy_at(r).validate(net.graph_at(r)), "");
  }
}

TEST(MaintainOver, CustomInitialClustering) {
  GraphSequence net({gen::star(5)});
  MaintainedHierarchy mh = maintain_over(net, 1, wcds_clustering);
  EXPECT_TRUE(mh.hierarchy.hierarchy_at(0).is_head(0));
}

TEST(MaintenanceStats, MeanReaffiliationsAveragesOverNodes) {
  MaintenanceStats s;
  s.per_node_reaffiliations = {0, 2, 4, 0};
  EXPECT_DOUBLE_EQ(s.mean_reaffiliations(), 1.5);
  MaintenanceStats empty;
  EXPECT_DOUBLE_EQ(empty.mean_reaffiliations(), 0.0);
}

TEST(HierarchyMetrics, MeasuresThetaAndMeans) {
  // Two rounds with different head sets.
  HierarchyView a(4);
  a.set_head(0);
  a.set_member(1, 0);
  a.set_member(2, 0);
  a.set_member(3, 0);
  HierarchyView b(4);
  b.set_head(0);
  b.set_head(1);
  b.set_member(2, 1);
  b.set_member(3, 0);
  HierarchySequence seq({a, b});
  const HierarchyMetrics m = measure_hierarchy(seq, 2);
  EXPECT_EQ(m.max_heads, 2u);
  EXPECT_DOUBLE_EQ(m.mean_heads, 1.5);
  EXPECT_DOUBLE_EQ(m.mean_members, 2.5);  // 3 then 2
  EXPECT_EQ(m.head_set_changes, 1u);
  EXPECT_EQ(m.node_count, 4u);
}

TEST(MaintenanceIntegration, ChurnIsBoundedOnMarkovianTrace) {
  MarkovianConfig cfg;
  cfg.nodes = 30;
  cfg.birth = 0.02;
  cfg.death = 0.05;
  cfg.initial = 0.3;
  cfg.rounds = 40;
  cfg.seed = 8;
  GraphSequence net = make_edge_markovian_trace(cfg);
  MaintainedHierarchy mh = maintain_over(net, 40);
  // Re-affiliations happen but are far fewer than nodes*rounds — the LCC
  // policy keeps the hierarchy quiet.
  EXPECT_LT(mh.stats.reaffiliations, 30u * 40u / 4u);
}

}  // namespace
}  // namespace hinet
