// Intra-cluster routing trees for multi-hop clusters.
#include "cluster/routing.hpp"

#include <gtest/gtest.h>

#include "cluster/dhop.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace hinet {
namespace {

TEST(ClusterRouting, OneHopClusterTrivialTrees) {
  const Graph g = gen::star(5);
  HierarchyView h(5);
  h.set_head(0);
  for (NodeId v = 1; v < 5; ++v) h.set_member(v, 0);
  const ClusterRouting r = build_cluster_routing(h, g);
  EXPECT_EQ(r.depth[0], 0);
  EXPECT_FALSE(r.has_parent(0));
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_EQ(r.parent[v], 0u);
    EXPECT_EQ(r.depth[v], 1);
  }
  EXPECT_EQ(r.children[0].size(), 4u);
}

TEST(ClusterRouting, MultiHopChain) {
  // head 0 - 1 - 2 - 3, all in cluster 0 (3-hop cluster).
  const Graph g = gen::path(4);
  HierarchyView h(4);
  h.set_head(0);
  h.set_member(1, 0);
  h.set_member(2, 0);
  h.set_member(3, 0);
  const ClusterRouting r = build_cluster_routing(h, g);
  EXPECT_EQ(r.parent[1], 0u);
  EXPECT_EQ(r.parent[2], 1u);
  EXPECT_EQ(r.parent[3], 2u);
  EXPECT_EQ(r.depth[3], 3);
  EXPECT_EQ(r.children[1], std::vector<NodeId>{2});
}

TEST(ClusterRouting, PrefersIntraClusterPath) {
  // Member 3 can reach head 0 via same-cluster node 1 (2 hops) or foreign
  // node 2 (2 hops); the intra-cluster pass must win.
  Graph g(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  HierarchyView h(4);
  h.set_head(0);
  h.set_member(1, 0);
  h.set_member(3, 0);
  h.set_head(2);  // node 2 is a foreign head
  const ClusterRouting r = build_cluster_routing(h, g);
  EXPECT_EQ(r.parent[3], 1u);  // not 2
}

TEST(ClusterRouting, FallsBackToForeignRelays) {
  // Member 2's only path to head 0 runs through node 1 of another cluster.
  Graph g(4, {{0, 1}, {1, 2}, {0, 3}});
  HierarchyView h(4);
  h.set_head(0);
  h.set_member(3, 0);
  h.set_head(1);
  // 2 is a d-hop member of head 0 reachable only via foreign head 1.
  h.set_member(2, 0);
  const ClusterRouting r = build_cluster_routing(h, g);
  EXPECT_EQ(r.parent[2], 1u);
  EXPECT_EQ(r.depth[2], 2);
}

TEST(ClusterRouting, UnreachableMemberHasNoParent) {
  Graph g(3, {{0, 1}});
  HierarchyView h(3);
  h.set_head(0);
  h.set_member(1, 0);
  h.set_head(2);
  const ClusterRouting r = build_cluster_routing(h, g);
  EXPECT_FALSE(r.has_parent(2));  // isolated head
  EXPECT_TRUE(r.has_parent(1));
}

TEST(ClusterRouting, UnaffiliatedNodesSkipped) {
  Graph g(3, {{0, 1}, {1, 2}});
  HierarchyView h(3);
  h.set_head(0);
  h.set_unaffiliated_gateway(1);
  const ClusterRouting r = build_cluster_routing(h, g);
  EXPECT_FALSE(r.has_parent(1));
  EXPECT_FALSE(r.has_parent(2));
  EXPECT_EQ(r.depth[1], -1);
}

TEST(ClusterRouting, LocalTreeInvariantsOnRandomGraphs) {
  Rng rng(7);
  const Graph g = gen::random_connected(40, 30, rng);
  const HierarchyView h = greedy_dhop_clustering(g, 3);
  const ClusterRouting r = build_cluster_routing(h, g);
  for (NodeId v = 0; v < 40; ++v) {
    if (h.is_head(v)) {
      EXPECT_EQ(r.depth[v], 0);
      EXPECT_FALSE(r.has_parent(v));
      continue;
    }
    if (!r.has_parent(v)) continue;
    const NodeId p = r.parent[v];
    // The parent is a physical neighbour (one hop per forward).
    EXPECT_TRUE(g.has_edge(v, p)) << "node " << v;
    EXPECT_GE(r.depth[v], 1);
    // Depth equals the BFS distance to the own head, so a same-cluster
    // parent sits exactly one hop closer; children lists invert parents.
    if (h.cluster_of(p) == h.cluster_of(v) || h.cluster_of(p) == kNoCluster) {
      // (foreign fallback parents belong to another tree; skip those)
    }
    bool found = false;
    for (NodeId c : r.children[p]) found |= c == v;
    EXPECT_TRUE(found) << "node " << v << " missing from parent's children";
  }
  // Greedy d-hop clusters are captured via BFS from their head, so every
  // member must have found a parent.
  for (NodeId v = 0; v < 40; ++v) {
    if (!h.is_head(v) && h.cluster_of(v) != kNoCluster) {
      EXPECT_TRUE(r.has_parent(v)) << "node " << v;
    }
  }
}

TEST(RoutingSequence, ClampsAndValidates) {
  const Graph g = gen::star(3);
  HierarchyView h(3);
  h.set_head(0);
  h.set_member(1, 0);
  h.set_member(2, 0);
  std::vector<ClusterRouting> rounds;
  rounds.push_back(build_cluster_routing(h, g));
  RoutingSequence seq(std::move(rounds));
  EXPECT_EQ(seq.node_count(), 3u);
  EXPECT_EQ(seq.routing_at(100).parent[1], 0u);
  EXPECT_THROW(RoutingSequence({}), PreconditionError);
}

TEST(BuildRoutingOver, CoversAllRounds) {
  StaticNetwork net(gen::path(4));
  HierarchyView h(4);
  h.set_head(0);
  h.set_member(1, 0);
  h.set_member(2, 0);
  h.set_member(3, 0);
  HierarchySequence hier({h});
  RoutingSequence seq = build_routing_over(net, hier, 5);
  EXPECT_EQ(seq.round_count(), 5u);
  EXPECT_EQ(seq.routing_at(4).parent[3], 2u);
}

}  // namespace
}  // namespace hinet
