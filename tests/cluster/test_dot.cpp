// Graphviz export.
#include "cluster/dot.hpp"

#include <gtest/gtest.h>

#include "cluster/algorithms.hpp"
#include "graph/generators.hpp"

namespace hinet {
namespace {

TEST(Dot, PlainGraphListsAllNodesAndEdges) {
  const Graph g = gen::path(3);
  const std::string dot = to_dot(g, "P3");
  EXPECT_NE(dot.find("graph P3 {"), std::string::npos);
  EXPECT_NE(dot.find("n0 [label=\"0\"]"), std::string::npos);
  EXPECT_NE(dot.find("n2 [label=\"2\"]"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1;"), std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2;"), std::string::npos);
  EXPECT_EQ(dot.find("n0 -- n2"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Dot, HierarchyShapesAndBackbone) {
  const Graph g = gen::path(5);
  const HierarchyView h = lowest_id_clustering(g);
  // Heads 0, 2, 4; gateways 1, 3.
  const std::string dot = to_dot(g, h);
  EXPECT_NE(dot.find("shape=doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
  // All edges here join heads/gateways: every edge is bold.
  EXPECT_NE(dot.find("penwidth=2.5"), std::string::npos);
}

TEST(Dot, UnaffiliatedNodesAreWhite) {
  Graph g(2, {{0, 1}});
  HierarchyView h(2);
  h.set_head(0);
  const std::string dot = to_dot(g, h);
  EXPECT_NE(dot.find("fillcolor=white"), std::string::npos);
}

TEST(Dot, MismatchedSizesThrow) {
  EXPECT_THROW(to_dot(Graph(3), HierarchyView(4)), PreconditionError);
}

TEST(Dot, ColorsAssignedPerCluster) {
  const Graph g = gen::path(5);
  const HierarchyView h = lowest_id_clustering(g);
  const std::string dot = to_dot(g, h);
  // Three clusters -> at least colors 1 and 2 appear.
  EXPECT_NE(dot.find("fillcolor=1"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=2"), std::string::npos);
}

}  // namespace
}  // namespace hinet
