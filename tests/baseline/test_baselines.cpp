// KLO baselines, flooding family, and gossip.
#include <gtest/gtest.h>

#include "analysis/assignment.hpp"
#include "baseline/flooding.hpp"
#include "baseline/gossip.hpp"
#include "baseline/klo.hpp"
#include "graph/adversary.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace hinet {
namespace {

// ---------------- KLO full-broadcast token forwarding --------------------

TEST(KloFlood, DeliversOnOneIntervalConnectedTraceInNMinusOne) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    AdversaryConfig cfg;
    cfg.nodes = 25;
    cfg.interval = 1;
    cfg.rounds = 24;
    cfg.churn_edges = 2;
    cfg.seed = seed;
    GraphSequence net = make_t_interval_trace(cfg);

    Rng rng(seed);
    const auto init =
        assign_tokens(25, 5, AssignmentMode::kDistinctRandom, rng);
    KloFloodParams p;
    p.k = 5;
    p.rounds = 24;
    Engine engine(net, nullptr, make_klo_flood_processes(init, p));
    const SimMetrics m =
        engine.run({.max_rounds = 24, .stop_when_complete = false});
    EXPECT_TRUE(m.all_delivered) << "seed " << seed;
  }
}

TEST(KloFlood, CommunicationIsBoundedByWorstCase) {
  AdversaryConfig cfg;
  cfg.nodes = 20;
  cfg.interval = 1;
  cfg.rounds = 19;
  cfg.churn_edges = 0;
  cfg.seed = 1;
  GraphSequence net = make_t_interval_trace(cfg);
  Rng rng(1);
  const auto init = assign_tokens(20, 4, AssignmentMode::kDistinctRandom, rng);
  KloFloodParams p;
  p.k = 4;
  p.rounds = 19;
  Engine engine(net, nullptr, make_klo_flood_processes(init, p));
  const SimMetrics m =
      engine.run({.max_rounds = 19, .stop_when_complete = false});
  // Analytic worst case: (n-1) * n * k.
  EXPECT_LE(m.tokens_sent, 19u * 20u * 4u);
  EXPECT_GT(m.tokens_sent, 0u);
}

TEST(KloFlood, EmptyNodesStaySilent) {
  StaticNetwork net(gen::path(3));
  std::vector<TokenSet> init(3, TokenSet(2));
  init[1] = TokenSet(2, {0, 1});
  KloFloodParams p;
  p.k = 2;
  p.rounds = 2;
  Engine engine(net, nullptr, make_klo_flood_processes(init, p));
  TraceRecorder rec;
  engine.set_observer(rec.observer());
  engine.run({.max_rounds = 1, .stop_when_complete = false});
  ASSERT_EQ(rec.rounds()[0].packets.size(), 1u);
  EXPECT_EQ(rec.rounds()[0].packets[0].src, 1u);
}

// ---------------- KLO phase pipeline --------------------------------------

TEST(KloPipeline, BroadcastsMinUnsentAndClearsAtPhaseEnd) {
  StaticNetwork net(gen::complete(2));
  std::vector<TokenSet> init(2, TokenSet(3));
  init[0] = TokenSet(3, {0, 1, 2});
  KloPipelineParams p;
  p.k = 3;
  p.phase_length = 2;
  p.phases = 2;
  Engine engine(net, nullptr, make_klo_pipeline_processes(init, p));
  TraceRecorder rec;
  engine.set_observer(rec.observer());
  engine.run({.max_rounds = 4, .stop_when_complete = false});
  auto pkt_of = [&](Round r, NodeId src) -> const Packet* {
    for (const Packet& pk : rec.rounds()[r].packets) {
      if (pk.src == src) return &pk;
    }
    return nullptr;
  };
  // Node 0, phase 0: tokens 0 then 1.  Phase 1 (TS cleared): 0 then 1.
  EXPECT_EQ(pkt_of(0, 0)->tokens, TokenSet(3, {0}));
  EXPECT_EQ(pkt_of(1, 0)->tokens, TokenSet(3, {1}));
  EXPECT_EQ(pkt_of(2, 0)->tokens, TokenSet(3, {0}));
  EXPECT_EQ(pkt_of(3, 0)->tokens, TokenSet(3, {1}));
  // Node 1 learned tokens and pipelines them too from round 1.
  ASSERT_NE(pkt_of(1, 1), nullptr);
  EXPECT_EQ(pkt_of(1, 1)->tokens, TokenSet(3, {0}));
}

TEST(KloPipeline, DeliversOnTIntervalTraceWithPaperSchedule) {
  // Schedule from the paper's comparison row: T = k + αL rounds per phase,
  // ⌈n/(αL)⌉ phases.
  const std::size_t n = 24, k = 4, alpha = 2, l = 2;
  const std::size_t t = k + alpha * l;
  const std::size_t phases = (n + alpha * l - 1) / (alpha * l);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    AdversaryConfig cfg;
    cfg.nodes = n;
    cfg.interval = t;
    cfg.rounds = phases * t;
    cfg.churn_edges = 3;
    cfg.seed = seed;
    GraphSequence net = make_t_interval_trace(cfg);
    Rng rng(seed ^ 0xabcULL);
    const auto init =
        assign_tokens(n, k, AssignmentMode::kDistinctRandom, rng);
    KloPipelineParams p;
    p.k = k;
    p.phase_length = t;
    p.phases = phases;
    Engine engine(net, nullptr, make_klo_pipeline_processes(init, p));
    const SimMetrics m = engine.run(
        {.max_rounds = phases * t, .stop_when_complete = false});
    EXPECT_TRUE(m.all_delivered) << "seed " << seed;
  }
}

// ---------------- Flooding family ----------------------------------------

TEST(Flooding, ClassicFloodingDeliversOneToken) {
  AdversaryConfig cfg;
  cfg.nodes = 15;
  cfg.interval = 1;
  cfg.rounds = 14;
  cfg.churn_edges = 1;
  cfg.seed = 5;
  GraphSequence net = make_t_interval_trace(cfg);
  std::vector<TokenSet> init(15, TokenSet(1));
  init[7].insert(0);
  FloodingParams p;
  p.k = 1;
  p.rounds = 14;
  Engine engine(net, nullptr, make_flooding_processes(init, p));
  const SimMetrics m =
      engine.run({.max_rounds = 14, .stop_when_complete = false});
  EXPECT_TRUE(m.all_delivered);
}

TEST(Flooding, ActivityWindowSilencesOldTokens) {
  // Static path, activity 1: a node forwards a token only in the round
  // right after learning it.
  StaticNetwork net(gen::path(4));
  std::vector<TokenSet> init(4, TokenSet(1));
  init[0].insert(0);
  FloodingParams p;
  p.k = 1;
  p.rounds = 10;
  p.activity = 1;
  Engine engine(net, nullptr, make_flooding_processes(init, p));
  TraceRecorder rec;
  engine.set_observer(rec.observer());
  const SimMetrics m =
      engine.run({.max_rounds = 10, .stop_when_complete = false});
  EXPECT_TRUE(m.all_delivered);  // the wave still crosses the path
  // With activity=1 the wavefront passes each node once: node 0 transmits
  // only in round 0 (it learned at round 0 per initialisation).
  std::size_t node0_sends = 0;
  for (const auto& rr : rec.rounds()) {
    for (const Packet& pk : rr.packets) {
      if (pk.src == 0) ++node0_sends;
    }
  }
  EXPECT_EQ(node0_sends, 1u);
  // Parsimonious flooding sends far fewer packets than classic flooding
  // would (which transmits every round at every informed node).
  EXPECT_LE(m.packets_sent, 2u * 4u);
}

TEST(Flooding, HigherActivityCostsMorePackets) {
  StaticNetwork net1(gen::ring(8));
  StaticNetwork net2(gen::ring(8));
  std::vector<TokenSet> init(8, TokenSet(1));
  init[0].insert(0);
  FloodingParams lo;
  lo.k = 1;
  lo.rounds = 8;
  lo.activity = 1;
  FloodingParams hi = lo;
  hi.activity = FloodingParams::kForever;
  Engine e1(net1, nullptr, make_flooding_processes(init, lo));
  Engine e2(net2, nullptr, make_flooding_processes(init, hi));
  const SimMetrics m1 = e1.run({.max_rounds = 8, .stop_when_complete = false});
  const SimMetrics m2 = e2.run({.max_rounds = 8, .stop_when_complete = false});
  EXPECT_TRUE(m1.all_delivered);
  EXPECT_TRUE(m2.all_delivered);
  EXPECT_LT(m1.packets_sent, m2.packets_sent);
}

// ---------------- Gossip ---------------------------------------------------

TEST(Gossip, OnlyAddresseeConsumes) {
  StaticNetwork net(gen::star(5));
  std::vector<TokenSet> init(5, TokenSet(1));
  init[0].insert(0);  // hub gossips to one leaf per round
  GossipParams p;
  p.k = 1;
  p.rounds = 1;
  p.seed = 3;
  auto procs = make_gossip_processes(init, p);
  std::vector<const Process*> views;
  for (const auto& pr : procs) views.push_back(pr.get());
  Engine engine(net, nullptr, std::move(procs));
  engine.run({.max_rounds = 1, .stop_when_complete = false});
  // The hub pushed to exactly one leaf; the broadcast medium delivered the
  // packet to all leaves, but only the addressee may consume it.
  std::size_t holders = 0;
  for (const Process* pr : views) {
    if (pr->knowledge().contains(0)) ++holders;
  }
  EXPECT_EQ(holders, 2u);  // hub + exactly one chosen leaf
}

TEST(Gossip, EventuallyDeliversOnCompleteGraphWithHighProbability) {
  StaticNetwork net(gen::complete(12));
  Rng rng(9);
  const auto init = assign_tokens(12, 3, AssignmentMode::kDistinctRandom, rng);
  GossipParams p;
  p.k = 3;
  p.rounds = 400;
  p.seed = 12;
  Engine engine(net, nullptr, make_gossip_processes(init, p));
  const SimMetrics m =
      engine.run({.max_rounds = 400, .stop_when_complete = true});
  EXPECT_TRUE(m.all_delivered);
  EXPECT_LT(m.rounds_to_completion, 400u);
}

TEST(Gossip, PushFullSetSpeedsUpDelivery) {
  StaticNetwork net1(gen::complete(12));
  StaticNetwork net2(gen::complete(12));
  Rng rng(10);
  const auto init = assign_tokens(12, 4, AssignmentMode::kDistinctRandom, rng);
  GossipParams one;
  one.k = 4;
  one.rounds = 500;
  one.seed = 7;
  GossipParams full = one;
  full.push_full_set = true;
  Engine e1(net1, nullptr, make_gossip_processes(init, one));
  Engine e2(net2, nullptr, make_gossip_processes(init, full));
  const SimMetrics m1 =
      e1.run({.max_rounds = 500, .stop_when_complete = true});
  const SimMetrics m2 =
      e2.run({.max_rounds = 500, .stop_when_complete = true});
  ASSERT_TRUE(m1.all_delivered);
  ASSERT_TRUE(m2.all_delivered);
  EXPECT_LE(m2.rounds_to_completion, m1.rounds_to_completion);
}

TEST(Gossip, DeterministicPerSeed) {
  StaticNetwork net1(gen::complete(8));
  StaticNetwork net2(gen::complete(8));
  Rng rng(2);
  const auto init = assign_tokens(8, 2, AssignmentMode::kDistinctRandom, rng);
  GossipParams p;
  p.k = 2;
  p.rounds = 100;
  p.seed = 42;
  Engine e1(net1, nullptr, make_gossip_processes(init, p));
  Engine e2(net2, nullptr, make_gossip_processes(init, p));
  const SimMetrics m1 =
      e1.run({.max_rounds = 100, .stop_when_complete = true});
  const SimMetrics m2 =
      e2.run({.max_rounds = 100, .stop_when_complete = true});
  EXPECT_EQ(m1.rounds_to_completion, m2.rounds_to_completion);
  EXPECT_EQ(m1.tokens_sent, m2.tokens_sent);
}

}  // namespace
}  // namespace hinet
