// GF(2) linear algebra and RLNC dissemination (Haeupler-Karger baseline).
#include "baseline/network_coding.hpp"

#include <gtest/gtest.h>

#include "analysis/assignment.hpp"
#include "baseline/klo.hpp"
#include "graph/adversary.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

namespace hinet {
namespace {

TEST(Gf2Basis, StartsEmpty) {
  Gf2Basis b(8);
  EXPECT_EQ(b.rank(), 0u);
  EXPECT_FALSE(b.full_rank());
  EXPECT_FALSE(b.decodable(0));
  // The zero vector is trivially in the (empty) span.
  EXPECT_TRUE(b.contains(std::vector<std::uint64_t>{0}));
}

TEST(Gf2Basis, UnitVectorsAreIndependent) {
  Gf2Basis b(8);
  for (TokenId t = 0; t < 8; ++t) {
    EXPECT_TRUE(b.insert(b.unit(t)));
  }
  EXPECT_TRUE(b.full_rank());
  for (TokenId t = 0; t < 8; ++t) EXPECT_TRUE(b.decodable(t));
}

TEST(Gf2Basis, DependentVectorsRejected) {
  Gf2Basis b(4);
  auto v01 = b.unit(0);
  for (std::size_t w = 0; w < v01.size(); ++w) v01[w] ^= b.unit(1)[w];
  ASSERT_TRUE(b.insert(b.unit(0)));
  ASSERT_TRUE(b.insert(b.unit(1)));
  EXPECT_FALSE(b.insert(v01));  // e0 ^ e1 is dependent
  EXPECT_FALSE(b.insert(std::vector<std::uint64_t>{0}));
  EXPECT_EQ(b.rank(), 2u);
}

TEST(Gf2Basis, CombinationDecodesIndividualTokens) {
  // Insert e0^e1 and e1: token 0 becomes decodable via elimination.
  Gf2Basis b(4);
  auto v01 = b.unit(0);
  v01[0] ^= b.unit(1)[0];
  ASSERT_TRUE(b.insert(v01));
  EXPECT_FALSE(b.decodable(0));
  EXPECT_FALSE(b.decodable(1));
  ASSERT_TRUE(b.insert(b.unit(1)));
  EXPECT_TRUE(b.decodable(0));
  EXPECT_TRUE(b.decodable(1));
}

TEST(Gf2Basis, CrossWordUniverse) {
  Gf2Basis b(130);
  EXPECT_TRUE(b.insert(b.unit(129)));
  EXPECT_TRUE(b.insert(b.unit(64)));
  EXPECT_TRUE(b.decodable(129));
  EXPECT_FALSE(b.decodable(0));
  EXPECT_EQ(b.rank(), 2u);
}

TEST(Gf2Basis, RandomCombinationStaysInSpan) {
  Gf2Basis b(16);
  Rng rng(5);
  for (TokenId t : {1u, 3u, 7u, 12u}) b.insert(b.unit(t));
  for (int i = 0; i < 50; ++i) {
    const auto v = b.random_combination(rng);
    EXPECT_TRUE(b.contains(v));
    // Non-zero by construction.
    bool nonzero = false;
    for (auto w : v) nonzero |= w != 0;
    EXPECT_TRUE(nonzero);
  }
}

TEST(Gf2Basis, EmptyCombinationIsZero) {
  Gf2Basis b(8);
  Rng rng(1);
  const auto v = b.random_combination(rng);
  for (auto w : v) EXPECT_EQ(w, 0u);
}

TEST(NetworkCoding, InitialTokensAreDecodable) {
  NetworkCodingParams p;
  p.k = 4;
  p.rounds = 5;
  NetworkCodingProcess proc(0, TokenSet(4, {1, 3}), p);
  EXPECT_TRUE(proc.knowledge().contains(1));
  EXPECT_TRUE(proc.knowledge().contains(3));
  EXPECT_FALSE(proc.knowledge().contains(0));
  EXPECT_EQ(proc.rank(), 2u);
}

TEST(NetworkCoding, CodedPacketsCostOneToken) {
  StaticNetwork net(gen::complete(3));
  std::vector<TokenSet> init(3, TokenSet(4));
  init[0] = TokenSet(4, {0, 1, 2, 3});
  NetworkCodingParams p;
  p.k = 4;
  p.rounds = 3;
  p.seed = 7;
  Engine engine(net, nullptr, make_network_coding_processes(init, p));
  const SimMetrics m =
      engine.run({.max_rounds = 1, .stop_when_complete = false});
  // Only node 0 is informed in round 0: exactly one packet of wire size 1.
  EXPECT_EQ(m.packets_sent, 1u);
  EXPECT_EQ(m.tokens_sent, 1u);
}

TEST(NetworkCoding, DeliversOnStaticCompleteGraph) {
  StaticNetwork net(gen::complete(10));
  Rng rng(2);
  const auto init = assign_tokens(10, 6, AssignmentMode::kDistinctRandom, rng);
  NetworkCodingParams p;
  p.k = 6;
  p.rounds = 100;
  p.seed = 3;
  Engine engine(net, nullptr, make_network_coding_processes(init, p));
  const SimMetrics m =
      engine.run({.max_rounds = 100, .stop_when_complete = true});
  EXPECT_TRUE(m.all_delivered);
}

TEST(NetworkCoding, DeliversOnDynamicTracesWithHighProbability) {
  std::size_t delivered = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    AdversaryConfig cfg;
    cfg.nodes = 16;
    cfg.interval = 1;
    cfg.rounds = 120;
    cfg.churn_edges = 3;
    cfg.seed = seed;
    GraphSequence net = make_t_interval_trace(cfg);
    Rng rng(seed);
    const auto init =
        assign_tokens(16, 4, AssignmentMode::kDistinctRandom, rng);
    NetworkCodingParams p;
    p.k = 4;
    p.rounds = 120;
    p.seed = seed ^ 0xc0deULL;
    Engine engine(net, nullptr, make_network_coding_processes(init, p));
    const SimMetrics m =
        engine.run({.max_rounds = 120, .stop_when_complete = true});
    if (m.all_delivered) ++delivered;
  }
  EXPECT_GE(delivered, 4u);  // randomized: allow one unlucky seed
}

TEST(NetworkCoding, CheaperPerRoundThanFullBroadcast) {
  // RLNC sends one token-equivalent per node per round; KLO full
  // forwarding sends up to k — on the same trace RLNC's tokens-per-packet
  // is 1 while KLO's grows towards k.
  AdversaryConfig cfg;
  cfg.nodes = 16;
  cfg.interval = 1;
  cfg.rounds = 15;
  cfg.churn_edges = 3;
  cfg.seed = 2;
  GraphSequence net1 = make_t_interval_trace(cfg);
  GraphSequence net2 = make_t_interval_trace(cfg);
  Rng rng(9);
  const auto init = assign_tokens(16, 8, AssignmentMode::kDistinctRandom, rng);

  NetworkCodingParams nc;
  nc.k = 8;
  nc.rounds = 15;
  nc.seed = 5;
  Engine e1(net1, nullptr, make_network_coding_processes(init, nc));
  const SimMetrics m_nc =
      e1.run({.max_rounds = 15, .stop_when_complete = false});

  KloFloodParams kf;
  kf.k = 8;
  kf.rounds = 15;
  Engine e2(net2, nullptr, make_klo_flood_processes(init, kf));
  const SimMetrics m_klo =
      e2.run({.max_rounds = 15, .stop_when_complete = false});

  ASSERT_GT(m_nc.packets_sent, 0u);
  ASSERT_GT(m_klo.packets_sent, 0u);
  const double nc_per_packet = static_cast<double>(m_nc.tokens_sent) /
                               static_cast<double>(m_nc.packets_sent);
  const double klo_per_packet = static_cast<double>(m_klo.tokens_sent) /
                                static_cast<double>(m_klo.packets_sent);
  EXPECT_DOUBLE_EQ(nc_per_packet, 1.0);
  EXPECT_GT(klo_per_packet, 1.0);
}

TEST(NetworkCoding, DeterministicPerSeed) {
  StaticNetwork net1(gen::ring(8));
  StaticNetwork net2(gen::ring(8));
  Rng rng(4);
  const auto init = assign_tokens(8, 3, AssignmentMode::kDistinctRandom, rng);
  NetworkCodingParams p;
  p.k = 3;
  p.rounds = 60;
  p.seed = 11;
  Engine e1(net1, nullptr, make_network_coding_processes(init, p));
  Engine e2(net2, nullptr, make_network_coding_processes(init, p));
  const SimMetrics m1 = e1.run({.max_rounds = 60, .stop_when_complete = true});
  const SimMetrics m2 = e2.run({.max_rounds = 60, .stop_when_complete = true});
  EXPECT_EQ(m1.rounds_to_completion, m2.rounds_to_completion);
  EXPECT_EQ(m1.tokens_sent, m2.tokens_sent);
}

}  // namespace
}  // namespace hinet
