// Fixture: durability-ordering violations silenced by auditable allows.
// Must produce zero findings.
// Lint-test data only — never compiled.
#include <cstdio>

void publish_no_fsync(const char* tmp, const char* final_path) {
  std::FILE* f = std::fopen(tmp, "wb");
  std::fwrite("x", 1, 1, f);
  std::fclose(f);
  // detlint-allow(durability-ordering): fixture — target fs is a tmpfs scratch
  rename(tmp, final_path);
}

void append_record(int fd, const void* buf) {
  write_all(fd, buf, 8);  // detlint-allow(durability-ordering): fixture — caller syncs in batches
}

int acquire_scratch_lock(const char* path) {
  // detlint-allow(durability-ordering): fixture — scratch lock on a tmpfs that never survives reboot
  const int fd = open(path, O_CREAT | O_EXCL | O_WRONLY, 0644);
  return fd;
}

void release_scratch_lock(const char* path) {
  unlink(path);  // detlint-allow(durability-ordering): fixture — scratch lock on a tmpfs
}
