// Fixture: durability-ordering violations — a write-then-rename publish that
// never fsyncs the file and never fsyncs the parent directory, and an append
// path that returns without making the record durable.
// Lint-test data only — never compiled.
#include <cstdio>

void publish_no_fsync(const char* tmp, const char* final_path) {
  std::FILE* f = std::fopen(tmp, "wb");
  std::fwrite("x", 1, 1, f);
  std::fclose(f);
  rename(tmp, final_path);  // missing file fsync AND parent-dir fsync
}

void append_record(int fd, const void* buf) {
  write_all(fd, buf, 8);  // acked append with no fdatasync behind it
}

int acquire_lock_no_dirsync(const char* path) {
  const int fd = open(path, O_CREAT | O_EXCL | O_WRONLY, 0644);
  return fd;  // the acquisition never reaches the parent inode durably
}

void release_lock_no_dirsync(const char* path) {
  unlink(path);  // a crash here resurrects the lock for every future acquirer
}
