// Fixture: every statement below must trip banned-random.  This file is
// lint-test data only — it is never compiled or linked.
#include <cstdlib>
#include <random>

unsigned fixture_bad_rand() {
  std::srand(42);
  const int x = std::rand();
  std::random_device rd;
  std::mt19937 gen(rd());
  std::mt19937_64 gen64(static_cast<unsigned>(x));
  std::default_random_engine eng;
  return static_cast<unsigned>(gen() + gen64() + eng());
}
