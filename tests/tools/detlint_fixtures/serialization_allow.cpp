// Fixture: serialization-symmetry violations silenced by auditable allows.
// Must produce zero findings.
// Lint-test data only — never compiled.
struct Widget {
  void save_state(ByteWriter& w) const { w.u64(count_); }

  // detlint-allow(serialization-symmetry): fixture — reader upgrades a legacy field
  void load_state(ByteReader& r) {
    count_ = r.u64();
    legacy_ = r.u32();
  }
};

void persist(const std::string& path, const ByteWriter& w) {
  write_checksummed_file(path, w.buffer(), 3);  // detlint-allow(serialization-symmetry): fixture — one-off migration blob
}
