// Fixture: serialization-symmetry violations — a save/load pair whose
// type-tag sequences disagree, and a checksummed-file call with a bare
// numeric version tag.
// Lint-test data only — never compiled.
struct Widget {
  void save_state(ByteWriter& w) const {
    w.u64(count_);
    w.u32(flags_);
    w.f64(rate_);
  }

  void load_state(ByteReader& r) {
    count_ = r.u64();
    flags_ = r.u64();  // writer used u32 — sequences diverge here
    rate_ = r.f64();
  }
};

void persist(const std::string& path, const ByteWriter& w) {
  write_checksummed_file(path, w.buffer(), 3);  // bare literal version tag
}
