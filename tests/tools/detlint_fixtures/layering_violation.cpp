// Fixture: include-layering violations.  Linted under the pretend path
// src/sim/layering_violation.cpp, so includes of the service and analysis
// layers point *up* the declared order and must fire; util and sim stay
// legal; the angled include is outside the DAG.
// Lint-test data only — never compiled.
#include <vector>

#include "service/service.hpp"
#include "analysis/crossover.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
// detlint-allow(include-layering): fixture — transitional shim, tracked for removal
#include "service/framed_log.hpp"
