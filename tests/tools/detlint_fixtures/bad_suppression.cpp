// Fixture: malformed suppressions must surface as bad-directive findings and
// must NOT silence the underlying rule.  Lint-test data only — never
// compiled.
#include <cstdlib>

int fixture_bad_suppressions() {
  // detlint-allow(banned-random)
  const int a = std::rand();
  // detlint-allow(no-such-rule): names a rule that does not exist
  const int b = std::rand();
  // detlint-allow banned-random: missing the parenthesised rule name
  return a + b;
}

// detlint: hot-path-begin
// detlint: hot-path-begin
inline int fixture_nested_region() { return 0; }
// detlint: hot-path-end
