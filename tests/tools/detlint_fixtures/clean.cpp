// Fixture: a well-behaved file — ordered iteration, no RNG or clock use, and
// a hot region that only reuses existing capacity.  The linter must report
// nothing.  Lint-test data only — never compiled.
#include <cstdint>
#include <vector>

std::uint64_t fixture_clean(const std::vector<std::uint64_t>& xs) {
  std::uint64_t acc = 0;
  // detlint: hot-path-begin
  for (const std::uint64_t x : xs) {
    acc += x * 0x9e3779b97f4a7c15ULL;
  }
  // detlint: hot-path-end
  // Banned names inside literals must not fire: "std::rand() mt19937".
  const char* const doc = "steady_clock::now() and time() are banned";
  return acc + static_cast<std::uint64_t>(doc[0]);
}
