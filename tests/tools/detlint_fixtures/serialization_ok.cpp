// Fixture: symmetric serialization — matching tag sequences, paired helpers,
// the nested-ByteWriter-then-blob idiom, and a named version constant.
// Must produce zero findings.
// Lint-test data only — never compiled.
inline constexpr std::uint32_t kWidgetVersion = 3;

void save_rng(ByteWriter& w, const Rng& rng) { w.u64(rng.word()); }
void load_rng(ByteReader& r, Rng& rng) { rng.set_word(r.u64()); }

struct Widget {
  void save_state(ByteWriter& w) const {
    w.u64(count_);
    save_rng(w, rng_);
    ByteWriter dw;       // nested stream: reaches `w` only through blob()
    driver_.save_state(dw);
    w.blob(dw.buffer());
  }

  void load_state(ByteReader& r) {
    count_ = r.u64();
    load_rng(r, rng_);
    ByteReader dr(r.blob(), "widget driver state");
    driver_.load_state(dr);
  }
};

void persist(const std::string& path, const ByteWriter& w) {
  write_checksummed_file(path, w.buffer(), kWidgetVersion);
}
