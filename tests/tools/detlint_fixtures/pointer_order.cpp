// Fixture: pointer-keyed ordering in each statement below must trip
// pointer-order.  Lint-test data only — never compiled.
#include <cstdint>
#include <functional>
#include <map>
#include <set>

struct Node {
  int id;
};

std::uintptr_t fixture_pointer_order(Node* a, Node* b) {
  std::set<Node*> by_address{a, b};
  std::map<Node*, int> ranks{{a, 0}};
  const bool before = std::less<Node*>{}(a, b);
  const auto addr = reinterpret_cast<std::uintptr_t>(a);
  return addr + by_address.size() + static_cast<std::uintptr_t>(before) +
         ranks.size();
}
