// Fixture: every statement below must trip banned-time.  Lint-test data
// only — never compiled.
#include <chrono>
#include <ctime>

long fixture_bad_time() {
  const auto mono = std::chrono::steady_clock::now();
  const auto wall = std::chrono::system_clock::now();
  const auto fine = std::chrono::high_resolution_clock::now();
  const std::time_t stamp = std::time(nullptr);
  return static_cast<long>(stamp) + mono.time_since_epoch().count() +
         wall.time_since_epoch().count() + fine.time_since_epoch().count();
}
