// Fixture: every banned pattern below carries a well-formed suppression, so
// the linter must report nothing.  Lint-test data only — never compiled.
// detlint-allow-file(banned-time): fixture exercises file-scope suppression
#include <chrono>
#include <cstdlib>

long fixture_suppressed() {
  // detlint-allow(banned-random): fixture exercises preceding-line suppression
  const int a = std::rand();
  const int b = std::rand();  // detlint-allow(banned-random): same-line form
  const auto t = std::chrono::steady_clock::now();  // file-scope allow above
  return a + b + t.time_since_epoch().count();
}

// detlint: hot-path-begin
inline void fixture_suppressed_hot(int** slot) {
  // detlint-allow(hot-path-alloc): fixture exercises hot-region suppression
  *slot = new int(1);
}
// detlint: hot-path-end
