// Fixture: the compliant durability protocol — fsync the file before the
// rename, fsync the parent directory after it, fdatasync before an append
// acks.  Must produce zero findings.
// Lint-test data only — never compiled.
#include <cstdio>

void publish(const char* tmp, const char* final_path) {
  std::FILE* f = std::fopen(tmp, "wb");
  std::fwrite("x", 1, 1, f);
  std::fflush(f);
  fsync(fileno(f));
  std::fclose(f);
  rename(tmp, final_path);
  fsync_parent_directory(final_path);
}

void append_record(int fd, const void* buf) {
  write_all(fd, buf, 8);
  sync_now(fd);
}

int acquire_lock(const char* path) {
  const int fd = open(path, O_CREAT | O_EXCL | O_WRONLY, 0644);
  fsync_parent_directory(path);
  return fd;
}

void release_lock(const char* path) {
  unlink(path);
  fsync_parent_directory(path);
}
