// Fixture: each marked loop iterates an unordered container and must trip
// unordered-iteration.  Lint-test data only — never compiled.
#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>

using Index = std::unordered_map<int, int>;

std::size_t fixture_unordered_iteration() {
  std::unordered_map<std::string, int> counts;
  std::unordered_set<int> seen;
  Index index;
  std::size_t total = counts.size() + seen.size() + index.size();
  for (const auto& [key, value] : counts) {  // hash-order over 'counts'
    total += static_cast<std::size_t>(value) + key.size();
  }
  for (const int v : seen) {  // hash-order over 'seen'
    total += static_cast<std::size_t>(v);
  }
  for (auto it = index.begin(); it != index.end(); ++it) {  // explicit walk
    total += static_cast<std::size_t>(it->second);
  }
  return total;
}
