// Fixture: allocations inside the declared region must trip hot-path-alloc;
// the identical calls in the cold function must not.  Lint-test data only —
// never compiled.
#include <cstdlib>
#include <memory>
#include <vector>

void fixture_cold_path(std::vector<int>& v) {
  v.reserve(64);
  int* raw = new int[4];
  delete[] raw;
  v.resize(32);
}

// detlint: hot-path-begin
void fixture_hot_path(std::vector<int>& v) {
  v.resize(128);
  v.reserve(256);
  int* raw = static_cast<int*>(std::malloc(16));
  std::free(raw);
  auto boxed = std::make_unique<int>(7);
  int* q = new int(9);
  delete q;
  v.push_back(*boxed);  // push_back is sanctioned: amortized into capacity
}
// detlint: hot-path-end
