// Negative tests for the detlint v2 rule families (include-layering,
// durability-ordering, serialization-symmetry) plus the baseline, SARIF and
// glob-exclude machinery.  Each rule must fire on its fixture, be silenced
// by an auditable allow directive, and stay quiet on compliant code.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "detlint/baseline.hpp"
#include "detlint/layers.hpp"
#include "detlint/linter.hpp"
#include "detlint/rules.hpp"
#include "detlint/sarif.hpp"

namespace hinet::detlint {
namespace {

std::filesystem::path fixture_path(const std::string& name) {
  return std::filesystem::path(DETLINT_FIXTURE_DIR) / name;
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  std::string path_for_rules = {},
                                  const LintOptions& opts = {}) {
  const auto findings =
      lint_file(fixture_path(name), std::move(path_for_rules), opts);
  EXPECT_TRUE(findings.has_value()) << "unreadable fixture " << name;
  return findings.value_or(std::vector<Finding>{});
}

std::size_t count_rule(const std::vector<Finding>& findings,
                       std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::set<std::size_t> lines_of(const std::vector<Finding>& findings,
                               std::string_view rule) {
  std::set<std::size_t> lines;
  for (const Finding& f : findings) {
    if (f.rule == rule) lines.insert(f.line);
  }
  return lines;
}

// ── durability-ordering ─────────────────────────────────────────────────

TEST(DetlintV2, DurabilityFiresOnUnsyncedPublishAndAppend) {
  const auto findings = lint_fixture("durability_bad.cpp");
  // Two findings on the rename (no file fsync, no parent-dir fsync), one
  // on the unsynced append write, one on the O_EXCL lock create with no
  // parent-dir fsync, one on the lock release with no parent-dir fsync.
  EXPECT_EQ(count_rule(findings, kRuleDurabilityOrdering), 5u);
  EXPECT_EQ(count_rule(findings, kRuleDurabilityOrdering), findings.size())
      << "only durability-ordering findings expected in this fixture";
  const auto lines = lines_of(findings, kRuleDurabilityOrdering);
  EXPECT_TRUE(lines.contains(11));  // rename(tmp, final_path)
  EXPECT_TRUE(lines.contains(15));  // write_all in append_record
  EXPECT_TRUE(lines.contains(19));  // O_EXCL open in acquire_lock_no_dirsync
  EXPECT_TRUE(lines.contains(24));  // unlink in release_lock_no_dirsync
}

TEST(DetlintV2, DurabilityQuietOnCompliantProtocol) {
  EXPECT_TRUE(lint_fixture("durability_ok.cpp").empty());
}

TEST(DetlintV2, DurabilityAllowSuppresses) {
  EXPECT_TRUE(lint_fixture("durability_allow.cpp").empty());
}

// ── serialization-symmetry ──────────────────────────────────────────────

TEST(DetlintV2, SymmetryFiresOnDivergentPairAndBareVersion) {
  const auto findings = lint_fixture("serialization_asymmetric.cpp");
  EXPECT_EQ(count_rule(findings, kRuleSerializationSymmetry), 2u);
  const auto lines = lines_of(findings, kRuleSerializationSymmetry);
  EXPECT_TRUE(lines.contains(12));  // load_state definition
  EXPECT_TRUE(lines.contains(20));  // write_checksummed_file(..., 3)
  // The divergence message names both tag sequences.
  for (const Finding& f : findings) {
    if (f.line == 12) {
      EXPECT_NE(f.message.find("u32"), std::string::npos) << f.message;
      EXPECT_NE(f.message.find("u64"), std::string::npos) << f.message;
    }
  }
}

TEST(DetlintV2, SymmetryQuietOnSymmetricPairAndNestedBlob) {
  // Includes the nested-ByteWriter-then-blob idiom: the helper writing into
  // a local buffer must not be counted against the outer stream.
  EXPECT_TRUE(lint_fixture("serialization_ok.cpp").empty());
}

TEST(DetlintV2, SymmetryAllowSuppresses) {
  EXPECT_TRUE(lint_fixture("serialization_allow.cpp").empty());
}

// ── include-layering ────────────────────────────────────────────────────

TEST(DetlintV2, LayeringFiresOnUpwardIncludeUnderManifest) {
  const ManifestParse parsed = load_layer_manifest(DETLINT_LAYERS_FILE);
  ASSERT_TRUE(parsed.errors.empty());
  LintOptions opts;
  opts.layers = &parsed.manifest;
  const auto findings = lint_fixture("layering_violation.cpp",
                                     "src/sim/layering_violation.cpp", opts);
  EXPECT_EQ(count_rule(findings, kRuleIncludeLayering), 2u);
  const auto lines = lines_of(findings, kRuleIncludeLayering);
  EXPECT_TRUE(lines.contains(8));  // service/service.hpp from sim
  EXPECT_TRUE(lines.contains(9));  // analysis/crossover.hpp from sim
  // util/sim includes and the angled system include stay legal; the allowed
  // service include on line 13 is suppressed.
  EXPECT_EQ(findings.size(), 2u);
}

TEST(DetlintV2, LayeringOffWithoutManifest) {
  const auto findings =
      lint_fixture("layering_violation.cpp", "src/sim/layering_violation.cpp");
  EXPECT_EQ(count_rule(findings, kRuleIncludeLayering), 0u);
}

TEST(DetlintV2, CheckedInManifestMatchesTreeOrder) {
  const ManifestParse parsed = load_layer_manifest(DETLINT_LAYERS_FILE);
  ASSERT_TRUE(parsed.errors.empty());
  EXPECT_EQ(parsed.manifest.order_string(),
            "util < graph < cluster < sim < baseline < core < analysis < "
            "service < top");
  EXPECT_LT(parsed.manifest.layer_of_file("src/sim/engine.cpp"),
            parsed.manifest.layer_of_include("service/service.hpp"));
  EXPECT_EQ(parsed.manifest.layer_of_file("third_party/x.cpp"),
            LayerManifest::npos);
}

TEST(DetlintV2, ManifestParseReportsErrors) {
  std::string bad = "layre util src/util util\n";
  EXPECT_FALSE(parse_layer_manifest(bad).errors.empty());
  bad = "layer util src/util util\nlayer util src/u2 -\n";
  EXPECT_FALSE(parse_layer_manifest(bad).errors.empty());
  EXPECT_FALSE(parse_layer_manifest("# only comments\n").errors.empty());
  EXPECT_FALSE(parse_layer_manifest("layer broken src/broken\n").errors.empty());
}

// ── baseline ────────────────────────────────────────────────────────────

TEST(DetlintV2, BaselineAbsorbsGrandfatheredAndReportsStale) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 3, std::string(kRuleBannedTime), "m"},
      {"src/a.cpp", 9, std::string(kRuleBannedTime), "m"},
      {"src/b.cpp", 1, std::string(kRuleHotPathAlloc), "m"},
  };
  std::vector<std::string> errors;
  const Baseline base = parse_baseline(
      "src/a.cpp|banned-time|3\n"      // one more than present → stale
      "src/c.cpp|pointer-order|1\n",   // none present → stale
      errors);
  ASSERT_TRUE(errors.empty());
  const BaselineResult result = apply_baseline(findings, base);
  EXPECT_EQ(result.suppressed, 2u);
  ASSERT_EQ(result.fresh.size(), 1u);
  EXPECT_EQ(result.fresh[0].path, "src/b.cpp");
  ASSERT_EQ(result.stale.size(), 2u);
  for (const Finding& f : result.stale) {
    EXPECT_EQ(f.rule, kRuleStaleBaseline);
    EXPECT_EQ(f.line, 0u);
  }
}

TEST(DetlintV2, BaselineRoundTripAbsorbsEverything) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 3, std::string(kRuleBannedTime), "m"},
      {"src/a.cpp", 9, std::string(kRuleBannedRandom), "m"},
      {"src/b.cpp", 1, std::string(kRuleHotPathAlloc), "m"},
  };
  std::vector<std::string> errors;
  const Baseline base = parse_baseline(render_baseline(findings), errors);
  ASSERT_TRUE(errors.empty());
  const BaselineResult result = apply_baseline(findings, base);
  EXPECT_EQ(result.suppressed, 3u);
  EXPECT_TRUE(result.fresh.empty());
  EXPECT_TRUE(result.stale.empty());
}

TEST(DetlintV2, BaselineParseRejectsMalformedLines) {
  std::vector<std::string> errors;
  parse_baseline("src/a.cpp|banned-time\n", errors);          // missing count
  parse_baseline("src/a.cpp|no-such-rule|1\n", errors);       // unknown rule
  parse_baseline("src/a.cpp|banned-time|0\n", errors);        // dead entry
  EXPECT_EQ(errors.size(), 3u);
}

// ── SARIF ───────────────────────────────────────────────────────────────

TEST(DetlintV2, SarifCarriesRulesResultsAndEscaping) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 7, std::string(kRuleBannedTime), "say \"now\"\n"},
      {"src/b.cpp", 0, std::string(kRuleStaleBaseline), "stale"},
  };
  const std::string sarif = to_sarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"banned-time\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/a.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("say \\\"now\\\"\\n"), std::string::npos);
  // Every catalogued rule is declared to the viewer.
  for (const RuleInfo& r : rule_catalog()) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(r.name) + "\""),
              std::string::npos);
  }
  // A line-0 (file-scope) finding carries no region.
  const std::size_t stale_pos = sarif.find("src/b.cpp");
  ASSERT_NE(stale_pos, std::string::npos);
  EXPECT_EQ(sarif.find("startLine", stale_pos), std::string::npos);
}

// ── glob excludes ───────────────────────────────────────────────────────

TEST(DetlintV2, ExcludeAcceptsDirectoryGlobs) {
  const std::vector<std::string> glob = {"detlint_fixtures/*"};
  EXPECT_TRUE(path_excluded("tests/tools/detlint_fixtures/foo.cpp", glob));
  EXPECT_TRUE(path_excluded("/abs/tests/tools/detlint_fixtures/a/b.hpp", glob));
  EXPECT_FALSE(path_excluded("src/sim/engine.cpp", glob));
  EXPECT_FALSE(path_excluded("src/detlint_fixtures.cpp", glob));

  const std::vector<std::string> question = {"test_?.cpp"};
  EXPECT_TRUE(path_excluded("tests/test_a.cpp", question));
  EXPECT_FALSE(path_excluded("tests/test_ab.cpp", question));

  const std::vector<std::string> cls = {"bench/day[0-9].cpp"};
  EXPECT_TRUE(path_excluded("bench/day3.cpp", cls));
  EXPECT_FALSE(path_excluded("bench/dayx.cpp", cls));

  // v1 behavior: a pattern without metacharacters is a plain substring.
  const std::vector<std::string> substr = {"detlint_fixtures"};
  EXPECT_TRUE(path_excluded("tests/tools/detlint_fixtures/foo.cpp", substr));
  EXPECT_TRUE(path_excluded("src/detlint_fixtures.cpp", substr));
}

TEST(DetlintV2, ExcludeGlobsApplyToSourceCollection) {
  // The include-graph pass walks the files collect_sources returns, so one
  // shared predicate keeps both passes consistent; this guards the
  // collection half against regressions.
  const std::vector<std::string> roots = {DETLINT_FIXTURE_DIR};
  const std::vector<std::string> excludes = {"durability_*"};
  const auto files = collect_sources(roots, excludes);
  ASSERT_FALSE(files.empty());
  for (const auto& f : files) {
    EXPECT_EQ(f.filename().generic_string().find("durability_"),
              std::string::npos)
        << f;
  }
  const bool has_serialization_ok =
      std::any_of(files.begin(), files.end(), [](const auto& f) {
        return f.filename() == "serialization_ok.cpp";
      });
  EXPECT_TRUE(has_serialization_ok);
}

}  // namespace
}  // namespace hinet::detlint
