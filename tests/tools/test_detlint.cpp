// Negative tests for detlint: every rule must fire on its fixture, honor the
// auditable suppression forms, and stay quiet on clean code.  The fixtures
// live under tests/tools/detlint_fixtures/ and are lint-test data only (they
// are excluded from the repo-wide `detlint` target and never compiled).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "detlint/linter.hpp"
#include "detlint/rules.hpp"

namespace hinet::detlint {
namespace {

std::vector<Finding> lint_fixture(const std::string& name) {
  const std::filesystem::path file =
      std::filesystem::path(DETLINT_FIXTURE_DIR) / name;
  const auto findings = lint_file(file);
  EXPECT_TRUE(findings.has_value()) << "unreadable fixture " << file;
  return findings.value_or(std::vector<Finding>{});
}

std::size_t count_rule(const std::vector<Finding>& findings,
                       std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::set<std::size_t> lines_of(const std::vector<Finding>& findings,
                               std::string_view rule) {
  std::set<std::size_t> lines;
  for (const Finding& f : findings) {
    if (f.rule == rule) lines.insert(f.line);
  }
  return lines;
}

TEST(Detlint, BannedRandomFiresOnEveryEngine) {
  const auto findings = lint_fixture("banned_random.cpp");
  // srand, rand, random_device, mt19937 (+ random_device use on the same
  // line), mt19937_64, default_random_engine.
  EXPECT_GE(count_rule(findings, kRuleBannedRandom), 6u);
  EXPECT_EQ(count_rule(findings, kRuleBannedRandom), findings.size())
      << "only banned-random findings expected in this fixture";
  const auto lines = lines_of(findings, kRuleBannedRandom);
  EXPECT_TRUE(lines.contains(7));   // std::srand(42)
  EXPECT_TRUE(lines.contains(8));   // std::rand()
  EXPECT_TRUE(lines.contains(9));   // std::random_device
  EXPECT_TRUE(lines.contains(12));  // std::default_random_engine
}

TEST(Detlint, BannedTimeFiresOnClocksAndLibc) {
  const auto findings = lint_fixture("banned_time.cpp");
  EXPECT_GE(count_rule(findings, kRuleBannedTime), 4u);
  const auto lines = lines_of(findings, kRuleBannedTime);
  EXPECT_TRUE(lines.contains(7));   // steady_clock
  EXPECT_TRUE(lines.contains(8));   // system_clock
  EXPECT_TRUE(lines.contains(9));   // high_resolution_clock
  EXPECT_TRUE(lines.contains(10));  // std::time(nullptr)
}

TEST(Detlint, PointerOrderFiresOnPointerKeys) {
  const auto findings = lint_fixture("pointer_order.cpp");
  EXPECT_GE(count_rule(findings, kRulePointerOrder), 4u);
  const auto lines = lines_of(findings, kRulePointerOrder);
  EXPECT_TRUE(lines.contains(13));  // std::set<Node*>
  EXPECT_TRUE(lines.contains(14));  // std::map<Node*, int>
  EXPECT_TRUE(lines.contains(15));  // std::less<Node*>
  EXPECT_TRUE(lines.contains(16));  // reinterpret_cast<std::uintptr_t>
}

TEST(Detlint, UnorderedIterationFiresOnLoopsAndExplicitWalks) {
  const auto findings = lint_fixture("unordered_iteration.cpp");
  EXPECT_GE(count_rule(findings, kRuleUnorderedIteration), 3u);
  const auto lines = lines_of(findings, kRuleUnorderedIteration);
  EXPECT_TRUE(lines.contains(15));  // range-for over 'counts'
  EXPECT_TRUE(lines.contains(18));  // range-for over 'seen'
  EXPECT_TRUE(lines.contains(21));  // index.begin() via the 'Index' alias
}

TEST(Detlint, HotPathAllocFiresOnlyInsideDeclaredRegions) {
  const auto findings = lint_fixture("hotpath_alloc.cpp");
  EXPECT_EQ(count_rule(findings, kRuleHotPathAlloc), findings.size());
  const auto lines = lines_of(findings, kRuleHotPathAlloc);
  // The cold function (lines 8-13) performs the same allocations and must
  // stay silent.
  EXPECT_TRUE(lines.empty() || *lines.begin() >= 15u)
      << "cold-path allocation was flagged";
  EXPECT_TRUE(lines.contains(17));  // v.resize(128)
  EXPECT_TRUE(lines.contains(18));  // v.reserve(256)
  EXPECT_TRUE(lines.contains(19));  // std::malloc
  EXPECT_TRUE(lines.contains(21));  // std::make_unique
  EXPECT_TRUE(lines.contains(22));  // new int(9)
  // push_back (line 24) is sanctioned and must not be flagged.
  EXPECT_FALSE(lines.contains(24));
}

TEST(Detlint, WellFormedSuppressionsSilenceEveryForm) {
  const auto findings = lint_fixture("suppressions_ok.cpp");
  EXPECT_TRUE(findings.empty()) << "first unexpected finding: "
                                << (findings.empty()
                                        ? ""
                                        : findings.front().rule + " at line " +
                                              std::to_string(
                                                  findings.front().line));
}

TEST(Detlint, MalformedSuppressionsAreFindingsAndDoNotSilence) {
  const auto findings = lint_fixture("bad_suppression.cpp");
  // Reason-less allow, unknown rule, missing parentheses, nested hot region.
  EXPECT_GE(count_rule(findings, kRuleBadDirective), 4u);
  // Both rand() calls must still be reported: a void suppression suppresses
  // nothing.
  EXPECT_EQ(count_rule(findings, kRuleBannedRandom), 2u);
}

TEST(Detlint, CleanFileHasNoFindings) {
  const auto findings = lint_fixture("clean.cpp");
  EXPECT_TRUE(findings.empty());
}

TEST(Detlint, PathExemptionsForRngHomeAndBenchTimers) {
  // src/util/rng is the sanctioned home of raw randomness.
  EXPECT_TRUE(lint_text("src/util/rng.hpp",
                        "struct S { unsigned long s_[4]; };\n")
                  .empty());
  EXPECT_TRUE(
      lint_text("src/util/rng.cpp", "void f() { auto rd = rand(); (void)rd; }\n")
          .empty());
  // The same text anywhere else must fire.
  EXPECT_EQ(lint_text("src/sim/engine.cpp",
                      "void f() { auto rd = rand(); (void)rd; }\n")
                .size(),
            1u);
  // bench/ owns wall-clock timers.
  const std::string timer =
      "void g() { auto t = std::chrono::steady_clock::now(); (void)t; }\n";
  EXPECT_TRUE(lint_text("bench/engine_hotpath.cpp", timer).empty());
  EXPECT_EQ(lint_text("src/core/alg1.cpp", timer).size(), 1u);
}

TEST(Detlint, LiteralsAndCommentsNeverFire) {
  EXPECT_TRUE(lint_text("src/x.cpp",
                        "const char* s = \"rand() mt19937 steady_clock\";\n"
                        "// prose mentioning rand() and system_clock\n"
                        "/* block comment: random_device */\n")
                  .empty());
  // Raw strings too.
  EXPECT_TRUE(
      lint_text("src/x.cpp", "const char* s = R\"(std::rand())\";\n").empty());
}

TEST(Detlint, FindingsAreDeterministicallyOrdered) {
  const auto a = lint_fixture("banned_random.cpp");
  const auto b = lint_fixture("banned_random.cpp");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].line, b[i].line);
    EXPECT_EQ(a[i].rule, b[i].rule);
  }
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(),
                             [](const Finding& x, const Finding& y) {
                               return x.line <= y.line;
                             }));
}

TEST(Detlint, RuleCatalogIsClosedUnderIsKnownRule) {
  for (const RuleInfo& r : rule_catalog()) {
    EXPECT_TRUE(is_known_rule(r.name)) << r.name;
    EXPECT_FALSE(r.summary.empty()) << r.name;
  }
  EXPECT_FALSE(is_known_rule("no-such-rule"));
  EXPECT_FALSE(is_known_rule(""));
}

TEST(Detlint, CollectSourcesHonorsExcludesAndSorts) {
  const std::vector<std::string> roots = {DETLINT_FIXTURE_DIR};
  const std::vector<std::string> none;
  const auto all = collect_sources(roots, none);
  EXPECT_GE(all.size(), 8u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                             [](const auto& x, const auto& y) {
                               return x.generic_string() < y.generic_string();
                             }));
  const std::vector<std::string> excludes = {"detlint_fixtures"};
  EXPECT_TRUE(collect_sources(roots, excludes).empty());
}

}  // namespace
}  // namespace hinet::detlint
