// Loss-tolerant Algorithm 1/2 variants: bounded retransmission, ACK
// piggybacking, Remark-1 re-upload on re-affiliation, Alg2 periodic member
// re-upload — plus the head-crash repair integration test.
#include <gtest/gtest.h>

#include "analysis/assumption_monitor.hpp"
#include "cluster/maintenance.hpp"
#include "core/alg1.hpp"
#include "core/alg2.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"

namespace hinet {
namespace {

// --- Alg1: head retransmit budget ---------------------------------------

/// Drives one process round by round and records the tokens it sends
/// (std::nullopt round = silent).
std::vector<std::optional<TokenId>> drive_transmits(Alg1Process& p,
                                                    const Graph& g,
                                                    const HierarchyView& h,
                                                    Round rounds) {
  std::vector<std::optional<TokenId>> sent;
  for (Round r = 0; r < rounds; ++r) {
    RoundContext ctx{r, 0, &g, &h};
    auto pkt = p.transmit(ctx);
    if (pkt) {
      sent.push_back(pkt->tokens.min_element());
    } else {
      sent.push_back(std::nullopt);
    }
    p.receive(ctx, {});
  }
  return sent;
}

TEST(RobustAlg1, HeadResweepsUpToBudget) {
  const Graph g(2, {{0, 1}});
  HierarchyView h(2);
  h.set_head(0);
  h.set_member(1, 0);

  Alg1Params params;
  params.k = 2;
  params.phase_length = 7;
  params.phases = 1;
  params.retransmit_budget = 2;
  Alg1Process head(0, TokenSet(2, {0, 1}), params);
  const auto sent = drive_transmits(head, g, h, 7);
  // Three full sweeps (1 scheduled + 2 retransmits), then silence.
  const std::vector<std::optional<TokenId>> expect = {0, 1, 0, 1, 0, 1,
                                                      std::nullopt};
  EXPECT_EQ(sent, expect);
  EXPECT_EQ(head.resend_sweeps(), 2u);
}

TEST(RobustAlg1, DefaultBudgetKeepsPaperSchedule) {
  const Graph g(2, {{0, 1}});
  HierarchyView h(2);
  h.set_head(0);
  h.set_member(1, 0);

  Alg1Params params;
  params.k = 2;
  params.phase_length = 5;
  params.phases = 1;
  Alg1Process head(0, TokenSet(2, {0, 1}), params);
  const auto sent = drive_transmits(head, g, h, 5);
  const std::vector<std::optional<TokenId>> expect = {
      0, 1, std::nullopt, std::nullopt, std::nullopt};
  EXPECT_EQ(sent, expect);
}

TEST(RobustAlg1, BudgetResetsAtPhaseBoundary) {
  const Graph g(2, {{0, 1}});
  HierarchyView h(2);
  h.set_head(0);
  h.set_member(1, 0);

  Alg1Params params;
  params.k = 1;
  params.phase_length = 3;
  params.phases = 2;
  params.retransmit_budget = 1;
  Alg1Process head(0, TokenSet(1, {0}), params);
  const auto sent = drive_transmits(head, g, h, 6);
  // Per phase: scheduled sweep, one resweep, silence — in both phases.
  const std::vector<std::optional<TokenId>> expect = {0, 0, std::nullopt,
                                                      0, 0, std::nullopt};
  EXPECT_EQ(sent, expect);
}

// --- Alg1: member ACK piggybacking --------------------------------------

/// Member of head 0 holding {0,1,2}; the head echoes token 1 in round 0.
/// Returns the member's send sequence over `rounds` rounds.
std::vector<std::optional<TokenId>> member_resend_sequence(bool ack,
                                                           Round rounds) {
  const Graph g(2, {{0, 1}});
  HierarchyView h(2);
  h.set_head(0);
  h.set_member(1, 0);

  Alg1Params params;
  params.k = 3;
  params.phase_length = rounds;
  params.phases = 1;
  params.retransmit_budget = 1;
  params.ack_piggyback = ack;
  Alg1Process member(1, TokenSet(3, {0, 1, 2}), params);

  Packet echo;
  echo.src = 0;  // the cluster head
  echo.tokens = TokenSet(3, {1});
  const PacketView echo_view = &echo;

  std::vector<std::optional<TokenId>> sent;
  for (Round r = 0; r < rounds; ++r) {
    RoundContext ctx{r, 1, &g, &h};
    auto pkt = member.transmit(ctx);
    if (pkt) {
      EXPECT_EQ(pkt->dest, 0u);
      sent.push_back(pkt->tokens.min_element());
    } else {
      sent.push_back(std::nullopt);
    }
    member.receive(ctx, r == 0 ? InboxView(&echo_view, 1) : InboxView{});
  }
  return sent;
}

TEST(RobustAlg1, AckPiggybackSkipsEchoedTokensOnResend) {
  // Round 0 uploads max = 2, then the head's echo of 1 lands in TR, so the
  // scheduled sweep sends only 0.  The ACK-aware resend sweep re-uploads
  // TA \ TR = {0, 2}; the echoed token 1 is never re-sent.
  const auto sent = member_resend_sequence(/*ack=*/true, 6);
  const std::vector<std::optional<TokenId>> expect = {2, 0,           2, 0,
                                                      std::nullopt, std::nullopt};
  EXPECT_EQ(sent, expect);
}

TEST(RobustAlg1, BlindResendReuploadsAcknowledgedTokens) {
  // Without ACK piggybacking the resend sweep forgets TR and re-uploads
  // everything, including the already-echoed token 1.
  const auto sent = member_resend_sequence(/*ack=*/false, 6);
  const std::vector<std::optional<TokenId>> expect = {2, 0, 2, 1, 0,
                                                      std::nullopt};
  EXPECT_EQ(sent, expect);
}

// --- Alg1: Remark 1 under re-affiliation churn --------------------------

std::size_t second_phase_uploads(bool reupload) {
  // Two heads; node 2 is a member of head 0 in phase 0 and of head 1 in
  // phase 1 (re-affiliation churn the pure Remark-1 mode ignores).
  const Graph g(3, {{0, 1}, {0, 2}, {1, 2}});
  HierarchyView phase0(3);
  phase0.set_head(0);
  phase0.set_head(1);
  phase0.set_member(2, 0);
  HierarchyView phase1(3);
  phase1.set_head(0);
  phase1.set_head(1);
  phase1.set_member(2, 1);

  Alg1Params params;
  params.k = 1;
  params.phase_length = 3;
  params.phases = 2;
  params.stable_head_optimisation = true;
  params.reupload_on_reaffiliation = reupload;
  Alg1Process member(2, TokenSet(1, {0}), params);

  std::size_t uploads_in_phase1 = 0;
  for (Round r = 0; r < 6; ++r) {
    const HierarchyView& h = r < 3 ? phase0 : phase1;
    RoundContext ctx{r, 2, &g, &h};
    if (member.transmit(ctx) && r >= 3) ++uploads_in_phase1;
    member.receive(ctx, {});
  }
  return uploads_in_phase1;
}

TEST(RobustAlg1, Remark1MemberStaysSilentAfterFirstPhase) {
  EXPECT_EQ(second_phase_uploads(/*reupload=*/false), 0u);
}

TEST(RobustAlg1, ReuploadOnReaffiliationUploadsToTheNewHead) {
  EXPECT_EQ(second_phase_uploads(/*reupload=*/true), 1u);
}

// --- Alg2: periodic member re-upload ------------------------------------

/// Drops every packet in rounds < `until` (a startup outage), perfect after.
class OutageChannel final : public ChannelModel {
 public:
  explicit OutageChannel(Round until) : until_(until) {}
  bool deliver(Round r, const Packet&, NodeId) override {
    return r >= until_;
  }

 private:
  Round until_;
};

SimMetrics run_alg2_with_startup_outage(std::size_t reupload_interval) {
  // Star: head 0, members 1..3; member 1 holds the only token.  The
  // member's single Fig. 5 upload happens in round 0 and is lost.
  StaticNetwork net(gen::star(4));
  HierarchyView h(4);
  h.set_head(0);
  for (NodeId v = 1; v < 4; ++v) h.set_member(v, 0);
  HierarchySequence hier({h});

  std::vector<TokenSet> init(4, TokenSet(1));
  init[1].insert(0);
  Alg2Params params;
  params.k = 1;
  params.rounds = 12;
  params.member_reupload_interval = reupload_interval;

  OutageChannel channel(2);
  Engine engine(net, &hier, make_alg2_processes(init, params));
  engine.set_channel(&channel);
  return engine.run({.max_rounds = 12, .stop_when_complete = true});
}

TEST(RobustAlg2, PaperScheduleStallsWhenTheOnlyUploadIsLost) {
  const SimMetrics m = run_alg2_with_startup_outage(0);
  EXPECT_FALSE(m.all_delivered);
  EXPECT_LT(m.token_coverage(), 1.0);
}

TEST(RobustAlg2, PeriodicReuploadRecoversTheLostUpload) {
  const SimMetrics m = run_alg2_with_startup_outage(4);
  EXPECT_TRUE(m.all_delivered);
}

TEST(RobustAlg2, ReuploadStopsOnceBackboneEchoes) {
  // With a perfect channel the upload lands in round 0 and the head echoes
  // it from round 1 on — the periodic re-upload must then stay quiet, so
  // communication matches the paper schedule's token count.
  StaticNetwork net(gen::star(3));
  HierarchyView h(3);
  h.set_head(0);
  h.set_member(1, 0);
  h.set_member(2, 0);
  HierarchySequence hier({h});
  std::vector<TokenSet> init(3, TokenSet(1));
  init[1].insert(0);

  auto run = [&](std::size_t interval) {
    Alg2Params params;
    params.k = 1;
    params.rounds = 10;
    params.member_reupload_interval = interval;
    StaticNetwork net_copy(net.graph_at(0));
    HierarchySequence hier_copy({h});
    Engine engine(net_copy, &hier_copy, make_alg2_processes(init, params));
    return engine.run({.max_rounds = 10, .stop_when_complete = false});
  };
  const SimMetrics base = run(0);
  const SimMetrics robust = run(3);
  EXPECT_TRUE(base.all_delivered);
  EXPECT_TRUE(robust.all_delivered);
  EXPECT_EQ(base.tokens_sent, robust.tokens_sent)
      << "re-upload fired although every token was acknowledged";
}

// --- Integration: head crash, repair, survivors complete ----------------

TEST(RobustIntegration, HeadCrashIsRepairedAndSurvivorsComplete) {
  // Star hub 0 heads every node; a leaf ring keeps survivors connected.
  // The hub — the lowest-id cluster head — crashes permanently mid-run.
  constexpr std::size_t n = 6;
  constexpr std::size_t rounds = 64;
  StaticNetwork base([&] {
    Graph g = gen::star(n);
    for (NodeId v = 1; v < n - 1; ++v) g.add_edge(v, v + 1);
    g.add_edge(n - 1, 1);
    return g;
  }());

  FaultPlan plan;
  plan.crashes.push_back({0, 5});  // permanent
  FaultyNetwork faulty(base, plan);

  // Freeze the realized topology and re-cluster over it: the maintainer
  // must notice the dead head and repair.
  GraphSequence realized = materialize(faulty, rounds);
  MaintainedHierarchy maintained = maintain_over(realized, rounds);
  EXPECT_GE(maintained.stats.head_promotions, 1u);
  EXPECT_GE(maintained.stats.reaffiliations, 1u);

  // The monitor must flag the crash window against the schedule's (T, L).
  {
    GraphSequence monitor_trace = materialize(faulty, rounds);
    HierarchySequence monitor_hier(maintained.hierarchy.rounds());
    Ctvg ctvg(std::move(monitor_trace), std::move(monitor_hier));
    const AssumptionReport report = monitor_assumptions(ctvg, rounds, 8, 2);
    EXPECT_GE(report.violated_windows(), 1u);
    ASSERT_TRUE(report.first_violation_round().has_value());
    EXPECT_LE(*report.first_violation_round(), 5u);
  }

  // Robust Alg1 over the repaired hierarchy: tokens live on survivors.
  std::vector<TokenSet> init(n, TokenSet(2));
  init[1].insert(0);
  init[4].insert(1);
  Alg1Params params;
  params.k = 2;
  params.phase_length = 8;
  params.phases = rounds / 8;
  params.retransmit_budget = 3;
  auto procs = make_alg1_processes(init, params);
  std::vector<const Process*> views;
  for (const auto& p : procs) views.push_back(p.get());

  Engine engine(realized, &maintained.hierarchy, std::move(procs));
  engine.run({.max_rounds = rounds, .stop_when_complete = false});
  for (NodeId v = 1; v < n; ++v) {
    EXPECT_TRUE(views[v]->knowledge().full()) << "survivor " << v;
  }
}

}  // namespace
}  // namespace hinet
