#include "core/hinet_generator.hpp"

#include <gtest/gtest.h>

#include "core/hinet_properties.hpp"
#include "graph/interval.hpp"

namespace hinet {
namespace {

HiNetConfig base_config(std::uint64_t seed) {
  HiNetConfig cfg;
  cfg.nodes = 40;
  cfg.heads = 6;
  cfg.phase_length = 8;
  cfg.phases = 5;
  cfg.hop_l = 2;
  cfg.reaffiliation_prob = 0.15;
  cfg.churn_edges = 4;
  cfg.seed = seed;
  return cfg;
}

TEST(HiNetMinNodes, Formula) {
  EXPECT_EQ(hinet_min_nodes(1, 3), 1u);
  EXPECT_EQ(hinet_min_nodes(5, 1), 5u);    // L=1: no relays
  EXPECT_EQ(hinet_min_nodes(5, 2), 9u);    // 4 relays
  EXPECT_EQ(hinet_min_nodes(4, 4), 13u);   // 3*3 relays
  EXPECT_THROW(hinet_min_nodes(0, 2), PreconditionError);
  EXPECT_THROW(hinet_min_nodes(2, 0), PreconditionError);
}

TEST(HiNetGenerator, RejectsInsufficientNodes) {
  HiNetConfig cfg = base_config(1);
  cfg.nodes = 8;  // needs >= 6 + 5*1 = 11
  EXPECT_THROW(make_hinet_trace(cfg), PreconditionError);
}

TEST(HiNetGenerator, TraceShape) {
  const HiNetConfig cfg = base_config(2);
  HiNetTrace trace = make_hinet_trace(cfg);
  EXPECT_EQ(trace.ctvg.node_count(), 40u);
  EXPECT_EQ(trace.ctvg.round_count(), 40u);  // 5 phases * 8 rounds
  EXPECT_EQ(trace.ctvg.validate(), "");
}

TEST(HiNetGenerator, DeterministicPerSeed) {
  const HiNetConfig cfg = base_config(3);
  HiNetTrace a = make_hinet_trace(cfg);
  HiNetTrace b = make_hinet_trace(cfg);
  for (Round r = 0; r < a.ctvg.round_count(); ++r) {
    EXPECT_TRUE(a.ctvg.graph_at(r) == b.ctvg.graph_at(r)) << "round " << r;
    EXPECT_TRUE(a.ctvg.hierarchy_at(r) == b.ctvg.hierarchy_at(r));
  }
  EXPECT_EQ(a.stats.reaffiliation_events, b.stats.reaffiliation_events);
}

TEST(HiNetGenerator, HeadCountMatchesConfig) {
  const HiNetConfig cfg = base_config(4);
  HiNetTrace trace = make_hinet_trace(cfg);
  for (Round r = 0; r < trace.ctvg.round_count(); ++r) {
    EXPECT_EQ(trace.ctvg.hierarchy_at(r).head_count(), cfg.heads);
  }
}

TEST(HiNetGenerator, StableHeadsNeverChange) {
  HiNetConfig cfg = base_config(5);
  cfg.stable_heads = true;
  cfg.head_churn_prob = 0.9;  // must be ignored
  HiNetTrace trace = make_hinet_trace(cfg);
  const auto heads0 = trace.ctvg.hierarchy_at(0).heads();
  for (Round r = 1; r < trace.ctvg.round_count(); ++r) {
    EXPECT_EQ(trace.ctvg.hierarchy_at(r).heads(), heads0);
  }
  EXPECT_EQ(trace.stats.theta, cfg.heads);
  EXPECT_EQ(trace.stats.head_changes, 0u);
}

TEST(HiNetGenerator, HeadChurnGrowsTheta) {
  HiNetConfig cfg = base_config(6);
  cfg.head_churn_prob = 0.5;
  cfg.phases = 8;
  HiNetTrace trace = make_hinet_trace(cfg);
  EXPECT_GT(trace.stats.theta, cfg.heads);  // some swaps happened
  EXPECT_GT(trace.stats.head_changes, 0u);
  // Per-round head count stays at the budget even as identities churn.
  for (Round r = 0; r < trace.ctvg.round_count(); ++r) {
    EXPECT_EQ(trace.ctvg.hierarchy_at(r).head_count(), cfg.heads);
  }
}

TEST(HiNetGenerator, ZeroReaffiliationMeansQuietMembers) {
  HiNetConfig cfg = base_config(7);
  cfg.reaffiliation_prob = 0.0;
  cfg.head_churn_prob = 0.0;
  HiNetTrace trace = make_hinet_trace(cfg);
  EXPECT_EQ(trace.stats.reaffiliation_events, 0u);
  EXPECT_DOUBLE_EQ(trace.stats.mean_reaffiliations, 0.0);
}

TEST(HiNetGenerator, ReaffiliationRateScalesWithProbability) {
  HiNetConfig lo = base_config(8);
  lo.reaffiliation_prob = 0.05;
  lo.phases = 10;
  HiNetConfig hi = lo;
  hi.reaffiliation_prob = 0.6;
  const auto t_lo = make_hinet_trace(lo);
  const auto t_hi = make_hinet_trace(hi);
  EXPECT_LT(t_lo.stats.reaffiliation_events, t_hi.stats.reaffiliation_events);
}

TEST(HiNetGenerator, SatisfiesHiNetDefinitionByConstruction) {
  const HiNetConfig cfg = base_config(9);
  HiNetTrace trace = make_hinet_trace(cfg);
  EXPECT_TRUE(check_hinet(trace.ctvg, trace.ctvg.round_count(),
                          cfg.phase_length, cfg.hop_l));
}

TEST(HiNetGenerator, BackboneLIsExactWithoutChurn) {
  HiNetConfig cfg = base_config(10);
  cfg.churn_edges = 0;
  for (int l : {1, 2, 3}) {
    cfg.hop_l = l;
    HiNetTrace trace = make_hinet_trace(cfg);
    // The chain spaces adjacent heads exactly L hops apart.
    EXPECT_EQ(measure_l_hop(trace.ctvg, 0), l) << "L=" << l;
  }
}

TEST(HiNetGenerator, SupportsMultiHopBackbones) {
  // L > 3 requires unaffiliated middle relays (future-work extension).
  HiNetConfig cfg = base_config(11);
  cfg.nodes = 60;
  cfg.hop_l = 5;
  cfg.churn_edges = 0;
  HiNetTrace trace = make_hinet_trace(cfg);
  EXPECT_EQ(trace.ctvg.validate(), "");
  EXPECT_EQ(measure_l_hop(trace.ctvg, 0), 5);
  // Some gateway must be unaffiliated.
  const HierarchyView& h = trace.ctvg.hierarchy_at(0);
  bool unaffiliated_gateway = false;
  for (NodeId v = 0; v < h.node_count(); ++v) {
    if (h.is_gateway(v) && h.cluster_of(v) == kNoCluster) {
      unaffiliated_gateway = true;
    }
  }
  EXPECT_TRUE(unaffiliated_gateway);
}

TEST(HiNetGenerator, EveryRoundIsConnected) {
  // Backbone + member edges span the graph: 1-interval connectivity.
  const HiNetConfig cfg = base_config(12);
  HiNetTrace trace = make_hinet_trace(cfg);
  EXPECT_TRUE(is_one_interval_connected(trace.ctvg.topology(),
                                        trace.ctvg.round_count()));
}

TEST(HiNetGenerator, PhaseLengthOneModelsOneLHiNet) {
  HiNetConfig cfg = base_config(13);
  cfg.phase_length = 1;
  cfg.phases = 30;
  cfg.reaffiliation_prob = 0.3;
  HiNetTrace trace = make_hinet_trace(cfg);
  EXPECT_EQ(trace.ctvg.round_count(), 30u);
  EXPECT_TRUE(check_hinet(trace.ctvg, 30, 1, cfg.hop_l));
  EXPECT_GT(trace.stats.reaffiliation_events, 0u);
}

TEST(HiNetGenerator, SingleHeadDegenerates) {
  HiNetConfig cfg = base_config(14);
  cfg.heads = 1;
  HiNetTrace trace = make_hinet_trace(cfg);
  EXPECT_EQ(trace.ctvg.validate(), "");
  EXPECT_EQ(trace.ctvg.hierarchy_at(0).head_count(), 1u);
  // All non-heads are members of the single cluster.
  EXPECT_EQ(trace.stats.mean_members, 39.0);
}

TEST(HiNetGenerator, MeanMembersAccountsForBackbone) {
  const HiNetConfig cfg = base_config(15);
  HiNetTrace trace = make_hinet_trace(cfg);
  // nodes - heads - relays = 40 - 6 - 5 = 29 plain members per round.
  EXPECT_DOUBLE_EQ(trace.stats.mean_members, 29.0);
}

// Property sweep across seeds and parameter combinations: every generated
// trace is valid, satisfies Definition 8 and is 1-interval connected.
struct GenCase {
  std::size_t nodes, heads, t, phases;
  int l;
  double reaff;
  std::uint64_t seed;
};

class GeneratorSweep : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorSweep, TraceSatisfiesModel) {
  const GenCase c = GetParam();
  HiNetConfig cfg;
  cfg.nodes = c.nodes;
  cfg.heads = c.heads;
  cfg.phase_length = c.t;
  cfg.phases = c.phases;
  cfg.hop_l = c.l;
  cfg.reaffiliation_prob = c.reaff;
  cfg.churn_edges = 3;
  cfg.seed = c.seed;
  HiNetTrace trace = make_hinet_trace(cfg);
  EXPECT_EQ(trace.ctvg.validate(), "");
  EXPECT_TRUE(
      check_hinet(trace.ctvg, trace.ctvg.round_count(), c.t, c.l));
  EXPECT_TRUE(is_one_interval_connected(trace.ctvg.topology(),
                                        trace.ctvg.round_count()));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeneratorSweep,
    ::testing::Values(GenCase{20, 3, 4, 3, 1, 0.1, 1},
                      GenCase{30, 5, 6, 4, 2, 0.2, 2},
                      GenCase{50, 8, 10, 3, 3, 0.3, 3},
                      GenCase{64, 10, 12, 4, 2, 0.05, 4},
                      GenCase{25, 4, 1, 20, 2, 0.4, 5},
                      GenCase{100, 12, 18, 5, 2, 0.15, 6},
                      GenCase{40, 2, 5, 5, 4, 0.2, 7},
                      GenCase{36, 6, 8, 4, 3, 0.25, 8}));

}  // namespace
}  // namespace hinet
