// Adaptive quiescence termination for Algorithms 1 and 2 (the paper's
// "stop broadcasting after a specific number of time intervals" taken
// adaptively) — cost savings and the delivery risk it trades for.
#include <gtest/gtest.h>

#include "analysis/assignment.hpp"
#include "core/alg1.hpp"
#include "core/alg2.hpp"
#include "core/hinet_generator.hpp"
#include "sim/engine.hpp"

namespace hinet {
namespace {

HiNetTrace one_l_trace(std::size_t nodes, std::uint64_t seed) {
  HiNetConfig gen;
  gen.nodes = nodes;
  gen.heads = nodes / 6;
  gen.phase_length = 1;
  gen.phases = nodes - 1;
  gen.hop_l = 2;
  gen.reaffiliation_prob = 0.1;
  gen.seed = seed;
  return make_hinet_trace(gen);
}

TEST(Alg2Quiescence, CutsCommunicationWhileStillDelivering) {
  const std::size_t n = 48;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    HiNetTrace t1 = one_l_trace(n, seed);
    HiNetTrace t2 = one_l_trace(n, seed);
    Rng rng(seed ^ 0xf00dULL);
    const auto init =
        assign_tokens(n, 5, AssignmentMode::kDistinctRandom, rng);

    Alg2Params plain;
    plain.k = 5;
    plain.rounds = n - 1;
    Engine e1(t1.ctvg.topology(), &t1.ctvg.hierarchy(),
              make_alg2_processes(init, plain));
    const SimMetrics m1 =
        e1.run({.max_rounds = n - 1, .stop_when_complete = false});

    Alg2Params adaptive = plain;
    adaptive.quiescence_rounds = 6;
    Engine e2(t2.ctvg.topology(), &t2.ctvg.hierarchy(),
              make_alg2_processes(init, adaptive));
    const SimMetrics m2 =
        e2.run({.max_rounds = n - 1, .stop_when_complete = false});

    ASSERT_TRUE(m1.all_delivered) << "seed " << seed;
    EXPECT_TRUE(m2.all_delivered) << "seed " << seed;
    EXPECT_LT(m2.tokens_sent, m1.tokens_sent) << "seed " << seed;
  }
}

TEST(Alg2Quiescence, NodesWakeUpWhenNewTokensArrive) {
  // A path where the far end only gets connected late would exercise
  // wake-up; here we simulate it directly through a two-component trace
  // that merges at round 10.
  const std::size_t n = 6;
  std::vector<Graph> graphs;
  std::vector<HierarchyView> views;
  for (Round r = 0; r < 30; ++r) {
    Graph g(n, {{0, 1}, {0, 2}, {3, 4}, {3, 5}});
    if (r >= 10) g.add_edge(2, 5);  // bridge appears late
    HierarchyView h(n);
    h.set_head(0);
    h.set_head(3);
    h.set_member(1, 0);
    h.set_member(2, 0, true);
    h.set_member(4, 3);
    h.set_member(5, 3, true);
    graphs.push_back(std::move(g));
    views.push_back(std::move(h));
  }
  Ctvg world(GraphSequence(std::move(graphs)),
             HierarchySequence(std::move(views)));

  std::vector<TokenSet> init(n, TokenSet(2));
  init[1].insert(0);  // one token per component
  init[4].insert(1);
  Alg2Params p;
  p.k = 2;
  p.rounds = 30;
  p.quiescence_rounds = 3;  // both components go quiet well before round 10
  Engine engine(world.topology(), &world.hierarchy(),
                make_alg2_processes(init, p));
  const SimMetrics m =
      engine.run({.max_rounds = 30, .stop_when_complete = false});
  // Without wake-up the merged bridge would be useless; with it, the
  // gateways resume relaying once fresh tokens cross at round >= 10...
  // but a fully quiet network has nothing to restart it.  Check the
  // actual semantic: heads keep broadcasting until quiescent, so at round
  // 10 gateways 2 and 5 are silent.  Delivery across the late bridge
  // requires *someone* still talking; quiescence q=3 silences everyone by
  // round ~4, so the bridge arrives too late and delivery fails.
  EXPECT_FALSE(m.all_delivered);
  // The control run without quiescence does deliver.
  std::vector<Graph> graphs2;
  std::vector<HierarchyView> views2;
  for (Round r = 0; r < 30; ++r) {
    Graph g(n, {{0, 1}, {0, 2}, {3, 4}, {3, 5}});
    if (r >= 10) g.add_edge(2, 5);
    HierarchyView h(n);
    h.set_head(0);
    h.set_head(3);
    h.set_member(1, 0);
    h.set_member(2, 0, true);
    h.set_member(4, 3);
    h.set_member(5, 3, true);
    graphs2.push_back(std::move(g));
    views2.push_back(std::move(h));
  }
  Ctvg world2(GraphSequence(std::move(graphs2)),
              HierarchySequence(std::move(views2)));
  Alg2Params full = p;
  full.quiescence_rounds = 0;
  Engine engine2(world2.topology(), &world2.hierarchy(),
                 make_alg2_processes(init, full));
  const SimMetrics m2 =
      engine2.run({.max_rounds = 30, .stop_when_complete = false});
  EXPECT_TRUE(m2.all_delivered);
}

TEST(Alg1Quiescence, SavesPhasesOnStableTraces) {
  const std::size_t n = 40, heads = 6, k = 4, alpha = 2;
  const int l = 2;
  const std::size_t t = k + alpha * static_cast<std::size_t>(l);
  const std::size_t m = (heads + alpha - 1) / alpha + 1;
  HiNetConfig gen;
  gen.nodes = n;
  gen.heads = heads;
  gen.phase_length = t;
  gen.phases = m;
  gen.hop_l = l;
  gen.reaffiliation_prob = 0.0;
  gen.seed = 9;
  HiNetTrace t1 = make_hinet_trace(gen);
  HiNetTrace t2 = make_hinet_trace(gen);

  Rng rng(77);
  const auto init = assign_tokens(n, k, AssignmentMode::kDistinctRandom, rng);

  Alg1Params plain;
  plain.k = k;
  plain.phase_length = t;
  plain.phases = m;
  Engine e1(t1.ctvg.topology(), &t1.ctvg.hierarchy(),
            make_alg1_processes(init, plain));
  const SimMetrics m1 =
      e1.run({.max_rounds = m * t, .stop_when_complete = false});

  Alg1Params adaptive = plain;
  adaptive.quiescence_phases = 2;
  Engine e2(t2.ctvg.topology(), &t2.ctvg.hierarchy(),
            make_alg1_processes(init, adaptive));
  const SimMetrics m2 =
      e2.run({.max_rounds = m * t, .stop_when_complete = false});

  ASSERT_TRUE(m1.all_delivered);
  EXPECT_TRUE(m2.all_delivered);
  EXPECT_LE(m2.tokens_sent, m1.tokens_sent);
}

}  // namespace
}  // namespace hinet
