// Algorithm 1 conformance and Theorem 1 / Remark 1 correctness.
#include "core/alg1.hpp"

#include <gtest/gtest.h>

#include "analysis/assignment.hpp"
#include "core/hinet_generator.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace hinet {
namespace {

/// Static one-cluster CTVG: head 0, members 1..n-1 (star graph).
struct StarWorld {
  StaticNetwork net;
  HierarchySequence hier;

  explicit StarWorld(std::size_t n)
      : net([n] {
          Graph g(n);
          for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
          return g;
        }()),
        hier([n] {
          HierarchyView h(n);
          h.set_head(0);
          for (NodeId v = 1; v < n; ++v) h.set_member(v, 0);
          return HierarchySequence({h});
        }()) {}
};

Alg1Params params(std::size_t k, std::size_t t, std::size_t m,
                  bool stable = false) {
  Alg1Params p;
  p.k = k;
  p.phase_length = t;
  p.phases = m;
  p.stable_head_optimisation = stable;
  return p;
}

TEST(Alg1, MemberUploadsMaxIdTokenFirst) {
  StarWorld w(3);
  std::vector<TokenSet> init(3, TokenSet(4));
  init[1] = TokenSet(4, {0, 2, 3});
  Engine engine(w.net, &w.hier, make_alg1_processes(init, params(4, 6, 1)));
  TraceRecorder rec;
  engine.set_observer(rec.observer());
  engine.run({.max_rounds = 3, .stop_when_complete = false});
  // Member 1's uploads: max-id first (3, then 2, then 0), addressed to 0.
  ASSERT_GE(rec.rounds().size(), 3u);
  auto member_pkt = [&](Round r) -> const Packet* {
    for (const Packet& p : rec.rounds()[r].packets) {
      if (p.src == 1) return &p;
    }
    return nullptr;
  };
  ASSERT_NE(member_pkt(0), nullptr);
  EXPECT_EQ(member_pkt(0)->dest, 0u);
  EXPECT_EQ(member_pkt(0)->tokens, TokenSet(4, {3}));
  ASSERT_NE(member_pkt(1), nullptr);
  EXPECT_EQ(member_pkt(1)->tokens, TokenSet(4, {2}));
  ASSERT_NE(member_pkt(2), nullptr);
  EXPECT_EQ(member_pkt(2)->tokens, TokenSet(4, {0}));
}

TEST(Alg1, HeadBroadcastsMinIdTokenFirst) {
  StarWorld w(3);
  std::vector<TokenSet> init(3, TokenSet(4));
  init[0] = TokenSet(4, {1, 3});
  Engine engine(w.net, &w.hier, make_alg1_processes(init, params(4, 6, 1)));
  TraceRecorder rec;
  engine.set_observer(rec.observer());
  engine.run({.max_rounds = 2, .stop_when_complete = false});
  auto head_pkt = [&](Round r) -> const Packet* {
    for (const Packet& p : rec.rounds()[r].packets) {
      if (p.src == 0) return &p;
    }
    return nullptr;
  };
  ASSERT_NE(head_pkt(0), nullptr);
  EXPECT_EQ(head_pkt(0)->dest, kBroadcastDest);
  EXPECT_EQ(head_pkt(0)->tokens, TokenSet(4, {1}));
  ASSERT_NE(head_pkt(1), nullptr);
  EXPECT_EQ(head_pkt(1)->tokens, TokenSet(4, {3}));
}

TEST(Alg1, MemberDoesNotResendWhatHeadEchoed) {
  // Head learns token 2 from member 1, broadcasts it back; member 1 puts
  // it in TR and never re-sends, and member 2 receives it.
  StarWorld w(3);
  std::vector<TokenSet> init(3, TokenSet(1));
  init[1].insert(0);
  Engine engine(w.net, &w.hier, make_alg1_processes(init, params(1, 4, 1)));
  const SimMetrics m = engine.run({.max_rounds = 4, .stop_when_complete = false});
  EXPECT_TRUE(m.all_delivered);
  // Member 1 uploads once (round 0), head broadcasts once (round 1).
  // After that everyone is silent: total 2 packets, 2 tokens.
  EXPECT_EQ(m.packets_sent, 2u);
  EXPECT_EQ(m.tokens_sent, 2u);
}

TEST(Alg1, SilentWhenNothingNew) {
  StarWorld w(4);
  std::vector<TokenSet> init(4, TokenSet(2));  // nobody holds anything
  Engine engine(w.net, &w.hier, make_alg1_processes(init, params(2, 3, 2)));
  const SimMetrics m = engine.run({.max_rounds = 6, .stop_when_complete = false});
  EXPECT_EQ(m.packets_sent, 0u);
}

TEST(Alg1, OneClusterDisseminatesWithinOnePhase) {
  // k tokens spread over members of one star; with T >= 2k every token is
  // uploaded and re-broadcast within the first phase.
  const std::size_t n = 6, k = 4;
  StarWorld w(n);
  Rng rng(3);
  const auto init = assign_tokens(n, k, AssignmentMode::kDistinctRandom, rng);
  Engine engine(w.net, &w.hier,
                make_alg1_processes(init, params(k, 2 * k + 2, 1)));
  const SimMetrics m = engine.run(
      {.max_rounds = 2 * k + 2, .stop_when_complete = false});
  EXPECT_TRUE(m.all_delivered);
}

TEST(Alg1, FinishedAfterScheduledRounds) {
  StarWorld w(2);
  std::vector<TokenSet> init(2, TokenSet(1));
  init[0].insert(0);
  auto procs = make_alg1_processes(init, params(1, 3, 2));
  RoundContext ctx;
  ctx.round = 5;
  EXPECT_FALSE(procs[0]->finished(ctx));
  ctx.round = 6;
  EXPECT_TRUE(procs[0]->finished(ctx));
  EXPECT_EQ(alg1_scheduled_rounds(params(1, 3, 2)), 6u);
}

TEST(Alg1, RejectsBadParameters) {
  EXPECT_THROW(Alg1Process(0, TokenSet(2), params(3, 4, 1)),
               PreconditionError);  // universe mismatch
  EXPECT_THROW(Alg1Process(0, TokenSet(2), params(2, 0, 1)),
               PreconditionError);
  EXPECT_THROW(Alg1Process(0, TokenSet(2), params(2, 4, 0)),
               PreconditionError);
}

// ---------------- Theorem 1 on generated (T, L)-HiNet traces -------------

struct TheoremCase {
  std::size_t nodes, heads, k, alpha;
  int l;
  double reaff;
  std::uint64_t seed;
};

class Theorem1Sweep : public ::testing::TestWithParam<TheoremCase> {};

TEST_P(Theorem1Sweep, DeliversWithinScheduledPhases) {
  const TheoremCase c = GetParam();
  // Theorem 1 schedule: T = k + αL, M = ⌈θ/α⌉ + 1.
  const std::size_t t = c.k + c.alpha * static_cast<std::size_t>(c.l);
  const std::size_t m = (c.heads + c.alpha - 1) / c.alpha + 1;

  HiNetConfig gen;
  gen.nodes = c.nodes;
  gen.heads = c.heads;
  gen.phase_length = t;
  gen.phases = m;
  gen.hop_l = c.l;
  gen.reaffiliation_prob = c.reaff;
  gen.churn_edges = 4;
  gen.seed = c.seed;
  HiNetTrace trace = make_hinet_trace(gen);

  Rng rng(c.seed ^ 0xdeadbeefULL);
  const auto init =
      assign_tokens(c.nodes, c.k, AssignmentMode::kDistinctRandom, rng);
  Engine engine(trace.ctvg.topology(), &trace.ctvg.hierarchy(),
                make_alg1_processes(init, params(c.k, t, m)));
  const SimMetrics metrics =
      engine.run({.max_rounds = m * t, .stop_when_complete = false});
  EXPECT_TRUE(metrics.all_delivered)
      << "nodes=" << c.nodes << " heads=" << c.heads << " k=" << c.k
      << " alpha=" << c.alpha << " L=" << c.l << " seed=" << c.seed;
  EXPECT_LE(metrics.rounds_to_completion, m * t);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Theorem1Sweep,
    ::testing::Values(TheoremCase{30, 4, 4, 1, 2, 0.1, 1},
                      TheoremCase{30, 4, 4, 1, 2, 0.1, 2},
                      TheoremCase{40, 6, 8, 2, 2, 0.2, 3},
                      TheoremCase{40, 6, 8, 2, 2, 0.2, 4},
                      TheoremCase{50, 8, 6, 2, 3, 0.15, 5},
                      TheoremCase{60, 10, 10, 5, 2, 0.1, 6},
                      TheoremCase{25, 3, 5, 3, 1, 0.3, 7},
                      TheoremCase{80, 12, 12, 4, 2, 0.05, 8},
                      TheoremCase{30, 5, 3, 1, 3, 0.25, 9},
                      TheoremCase{100, 10, 8, 5, 2, 0.1, 10}));

// ---------------- Remark 1: ∞-stable head set variant ---------------------

class Remark1Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Remark1Sweep, StableVariantDeliversAndSendsFewerMemberTokens) {
  const std::size_t nodes = 40, heads = 6, k = 6, alpha = 2;
  const int l = 2;
  const std::size_t t = k + alpha * static_cast<std::size_t>(l);
  const std::size_t m = (heads + alpha - 1) / alpha + 1;

  HiNetConfig gen;
  gen.nodes = nodes;
  gen.heads = heads;
  gen.phase_length = t;
  gen.phases = m;
  gen.hop_l = l;
  gen.reaffiliation_prob = 0.3;  // members churn between clusters
  gen.churn_edges = 4;
  gen.stable_heads = true;  // Remark 1's precondition
  gen.seed = GetParam();
  // Both algorithms run on the *same* trace.
  HiNetTrace trace_a = make_hinet_trace(gen);
  HiNetTrace trace_b = make_hinet_trace(gen);

  Rng rng(GetParam() ^ 0x1234ULL);
  const auto init =
      assign_tokens(nodes, k, AssignmentMode::kDistinctRandom, rng);

  Engine plain(trace_a.ctvg.topology(), &trace_a.ctvg.hierarchy(),
               make_alg1_processes(init, params(k, t, m, false)));
  const SimMetrics m_plain =
      plain.run({.max_rounds = m * t, .stop_when_complete = false});

  Engine stable(trace_b.ctvg.topology(), &trace_b.ctvg.hierarchy(),
                make_alg1_processes(init, params(k, t, m, true)));
  const SimMetrics m_stable =
      stable.run({.max_rounds = m * t, .stop_when_complete = false});

  EXPECT_TRUE(m_plain.all_delivered);
  EXPECT_TRUE(m_stable.all_delivered);
  // Remark 1's whole point: less communication under member churn.
  EXPECT_LE(m_stable.tokens_sent, m_plain.tokens_sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Remark1Sweep,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace hinet
