// CTVG trace serialization round-trips and malformed-input rejection.
#include "core/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/hinet_generator.hpp"

namespace hinet {
namespace {

HiNetTrace sample_trace(std::uint64_t seed) {
  HiNetConfig cfg;
  cfg.nodes = 18;
  cfg.heads = 3;
  cfg.phase_length = 4;
  cfg.phases = 3;
  cfg.hop_l = 2;
  cfg.reaffiliation_prob = 0.3;
  cfg.churn_edges = 3;
  cfg.seed = seed;
  return make_hinet_trace(cfg);
}

void expect_equal_traces(Ctvg& a, Ctvg& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.round_count(), b.round_count());
  for (Round r = 0; r < a.round_count(); ++r) {
    EXPECT_TRUE(a.graph_at(r) == b.graph_at(r)) << "round " << r;
    EXPECT_TRUE(a.hierarchy_at(r) == b.hierarchy_at(r)) << "round " << r;
  }
}

TEST(TraceIo, StringRoundTrip) {
  HiNetTrace trace = sample_trace(1);
  const std::string text = serialize_ctvg(trace.ctvg);
  Ctvg parsed = parse_ctvg(text);
  expect_equal_traces(trace.ctvg, parsed);
}

TEST(TraceIo, RoundTripIsStable) {
  // serialize(parse(serialize(x))) == serialize(x)
  HiNetTrace trace = sample_trace(2);
  const std::string once = serialize_ctvg(trace.ctvg);
  Ctvg parsed = parse_ctvg(once);
  EXPECT_EQ(serialize_ctvg(parsed), once);
}

TEST(TraceIo, FileRoundTrip) {
  HiNetTrace trace = sample_trace(3);
  const std::string path = ::testing::TempDir() + "/hinet_trace_test.txt";
  save_ctvg(trace.ctvg, path);
  Ctvg loaded = load_ctvg(path);
  expect_equal_traces(trace.ctvg, loaded);
  std::remove(path.c_str());
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_ctvg("/nonexistent/dir/trace.txt"), std::runtime_error);
}

TEST(TraceIo, HandlesUnaffiliatedGateways) {
  // L = 4 backbones have unaffiliated middle relays ('g' with '-').
  HiNetConfig cfg;
  cfg.nodes = 30;
  cfg.heads = 3;
  cfg.phase_length = 2;
  cfg.phases = 2;
  cfg.hop_l = 4;
  cfg.seed = 4;
  HiNetTrace trace = make_hinet_trace(cfg);
  const std::string text = serialize_ctvg(trace.ctvg);
  EXPECT_NE(text.find(" -"), std::string::npos);
  Ctvg parsed = parse_ctvg(text);
  expect_equal_traces(trace.ctvg, parsed);
}

TEST(TraceIo, FormatIsHumanReadable) {
  HiNetTrace trace = sample_trace(5);
  const std::string text = serialize_ctvg(trace.ctvg);
  EXPECT_EQ(text.rfind("hinet-trace v1\n", 0), 0u);
  EXPECT_NE(text.find("nodes 18 rounds 12"), std::string::npos);
  EXPECT_NE(text.find("round 0"), std::string::npos);
  EXPECT_NE(text.find("edges "), std::string::npos);
  EXPECT_NE(text.find("roles "), std::string::npos);
  EXPECT_NE(text.find("clusters "), std::string::npos);
}

// --- malformed input rejection -------------------------------------------

TEST(TraceIoErrors, BadMagic) {
  EXPECT_THROW(parse_ctvg("not-a-trace\n"), std::invalid_argument);
}

TEST(TraceIoErrors, BadHeader) {
  EXPECT_THROW(parse_ctvg("hinet-trace v1\nnodes x rounds 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_ctvg("hinet-trace v1\nnodes 0 rounds 1\n"),
               std::invalid_argument);
}

TEST(TraceIoErrors, TruncatedInput) {
  EXPECT_THROW(parse_ctvg("hinet-trace v1\nnodes 2 rounds 1\nround 0\n"),
               std::invalid_argument);
}

TEST(TraceIoErrors, WrongRoundIndex) {
  const std::string text =
      "hinet-trace v1\nnodes 2 rounds 1\nround 7\nedges\nroles mm\n"
      "clusters - -\n";
  EXPECT_THROW(parse_ctvg(text), std::invalid_argument);
}

TEST(TraceIoErrors, BadEdgeToken) {
  const std::string text =
      "hinet-trace v1\nnodes 2 rounds 1\nround 0\nedges 0x1\nroles mm\n"
      "clusters - -\n";
  EXPECT_THROW(parse_ctvg(text), std::invalid_argument);
}

TEST(TraceIoErrors, EdgeOutOfRange) {
  const std::string text =
      "hinet-trace v1\nnodes 2 rounds 1\nround 0\nedges 0-5\nroles mm\n"
      "clusters - -\n";
  EXPECT_THROW(parse_ctvg(text), std::invalid_argument);
}

TEST(TraceIoErrors, RoleStringWrongLength) {
  const std::string text =
      "hinet-trace v1\nnodes 2 rounds 1\nround 0\nedges\nroles m\n"
      "clusters - -\n";
  EXPECT_THROW(parse_ctvg(text), std::invalid_argument);
}

TEST(TraceIoErrors, UnknownRoleCharacter) {
  const std::string text =
      "hinet-trace v1\nnodes 2 rounds 1\nround 0\nedges\nroles mx\n"
      "clusters - -\n";
  EXPECT_THROW(parse_ctvg(text), std::invalid_argument);
}

TEST(TraceIoErrors, MemberAffiliatedWithNonHead) {
  const std::string text =
      "hinet-trace v1\nnodes 2 rounds 1\nround 0\nedges 0-1\nroles mm\n"
      "clusters 1 -\n";
  EXPECT_THROW(parse_ctvg(text), std::invalid_argument);
}

TEST(TraceIoErrors, HeadWithForeignCluster) {
  const std::string text =
      "hinet-trace v1\nnodes 2 rounds 1\nround 0\nedges 0-1\nroles hm\n"
      "clusters 1 0\n";
  EXPECT_THROW(parse_ctvg(text), std::invalid_argument);
}

TEST(TraceIoErrors, ClusterCellCountMismatch) {
  const std::string too_few =
      "hinet-trace v1\nnodes 2 rounds 1\nround 0\nedges\nroles mm\n"
      "clusters -\n";
  EXPECT_THROW(parse_ctvg(too_few), std::invalid_argument);
  const std::string too_many =
      "hinet-trace v1\nnodes 2 rounds 1\nround 0\nedges\nroles mm\n"
      "clusters - - -\n";
  EXPECT_THROW(parse_ctvg(too_many), std::invalid_argument);
}

TEST(TraceIoErrors, MessagesCarryLineNumbers) {
  try {
    parse_ctvg("hinet-trace v1\nnodes 2 rounds 1\nround 7\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(TraceIo, ParsedTraceIsUsable) {
  // A minimal hand-written trace parses into a valid CTVG.
  const std::string text =
      "hinet-trace v1\n"
      "nodes 3 rounds 2\n"
      "round 0\n"
      "edges 0-1 0-2 1-2\n"
      "roles hmg\n"
      "clusters 0 0 0\n"
      "round 1\n"
      "edges 0-1 0-2\n"
      "roles hmm\n"
      "clusters 0 0 0\n";
  Ctvg trace = parse_ctvg(text);
  EXPECT_EQ(trace.node_count(), 3u);
  EXPECT_EQ(trace.round_count(), 2u);
  EXPECT_TRUE(trace.hierarchy_at(0).is_gateway(2));
  EXPECT_EQ(trace.validate(), "");
}

}  // namespace
}  // namespace hinet
