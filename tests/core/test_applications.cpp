// Counting and leader election via k-token dissemination.
#include "core/applications.hpp"

#include <gtest/gtest.h>

#include "core/hinet_generator.hpp"
#include "graph/adversary.hpp"
#include "graph/generators.hpp"

namespace hinet {
namespace {

TEST(CountAndElect, KloFloodOnStaticGraph) {
  StaticNetwork net(gen::ring(9));
  ComputationConfig cfg;
  cfg.kind = DisseminationKind::kKloFlood;
  const ComputationResult r = count_and_elect(net, nullptr, cfg);
  EXPECT_TRUE(r.agreement_and_exact());
  for (const NodeAnswer& a : r.answers) {
    EXPECT_EQ(a.count, 9u);
    EXPECT_EQ(a.leader, std::optional<NodeId>(8));
  }
}

TEST(CountAndElect, KloFloodOnOneIntervalTrace) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    AdversaryConfig adv;
    adv.nodes = 18;
    adv.interval = 1;
    adv.rounds = 17;
    adv.churn_edges = 2;
    adv.seed = seed;
    GraphSequence net = make_t_interval_trace(adv);
    ComputationConfig cfg;
    cfg.kind = DisseminationKind::kKloFlood;
    const ComputationResult r = count_and_elect(net, nullptr, cfg);
    EXPECT_TRUE(r.agreement_and_exact()) << "seed " << seed;
  }
}

TEST(CountAndElect, Alg2OnHiNetTrace) {
  HiNetConfig gen;
  gen.nodes = 24;
  gen.heads = 4;
  gen.phase_length = 1;
  gen.phases = 23;
  gen.hop_l = 2;
  gen.reaffiliation_prob = 0.2;
  gen.seed = 3;
  HiNetTrace trace = make_hinet_trace(gen);
  ComputationConfig cfg;
  cfg.kind = DisseminationKind::kAlg2;
  const ComputationResult r =
      count_and_elect(trace.ctvg.topology(), &trace.ctvg.hierarchy(), cfg);
  EXPECT_TRUE(r.agreement_and_exact());
  EXPECT_EQ(r.answers[0].count, 24u);
}

TEST(CountAndElect, Alg1OnHiNetTrace) {
  // k = n tokens, so Theorem 1 needs T >= n + alpha*L.
  const std::size_t n = 20, heads = 3, alpha = 1, l = 2;
  const std::size_t t = n + alpha * l;
  const std::size_t m = (heads + alpha - 1) / alpha + 1;
  HiNetConfig gen;
  gen.nodes = n;
  gen.heads = heads;
  gen.phase_length = t;
  gen.phases = m;
  gen.hop_l = l;
  gen.reaffiliation_prob = 0.1;
  gen.seed = 5;
  HiNetTrace trace = make_hinet_trace(gen);
  ComputationConfig cfg;
  cfg.kind = DisseminationKind::kAlg1;
  cfg.alg1_phase_length = t;
  cfg.alg1_phases = m;
  const ComputationResult r =
      count_and_elect(trace.ctvg.topology(), &trace.ctvg.hierarchy(), cfg);
  EXPECT_TRUE(r.agreement_and_exact());
}

TEST(CountAndElect, InsufficientRoundsGivesPartialAnswers) {
  // A long path with too few rounds: far nodes cannot know everyone.
  StaticNetwork net(gen::path(12));
  ComputationConfig cfg;
  cfg.kind = DisseminationKind::kKloFlood;
  cfg.rounds = 3;  // diameter is 11
  const ComputationResult r = count_and_elect(net, nullptr, cfg);
  EXPECT_FALSE(r.agreement_and_exact());
  // End nodes know only their 3-hop neighbourhood plus themselves.
  EXPECT_EQ(r.answers[0].count, 4u);
}

TEST(CountAndElect, SingleNode) {
  StaticNetwork net(Graph(1));
  ComputationConfig cfg;
  cfg.kind = DisseminationKind::kKloFlood;
  const ComputationResult r = count_and_elect(net, nullptr, cfg);
  EXPECT_TRUE(r.agreement_and_exact());
  EXPECT_EQ(r.answers[0].leader, std::optional<NodeId>(0));
}

TEST(CountAndElect, Alg1RequiresSchedule) {
  StaticNetwork net(gen::ring(4));
  HierarchyView h(4);
  h.set_head(0);
  HierarchySequence hier({h});
  ComputationConfig cfg;
  cfg.kind = DisseminationKind::kAlg1;
  EXPECT_THROW(count_and_elect(net, &hier, cfg), PreconditionError);
}

TEST(CountAndElect, HierarchicalKindsRequireHierarchy) {
  StaticNetwork net(gen::ring(4));
  ComputationConfig cfg;
  cfg.kind = DisseminationKind::kAlg2;
  EXPECT_THROW(count_and_elect(net, nullptr, cfg), PreconditionError);
}

TEST(ComputationResult, AgreementPredicate) {
  ComputationResult r;
  EXPECT_FALSE(r.agreement_and_exact());  // empty
  r.answers = {{2, NodeId{1}}, {2, NodeId{1}}};
  EXPECT_TRUE(r.agreement_and_exact());
  r.answers[1].leader = NodeId{0};
  EXPECT_FALSE(r.agreement_and_exact());
  r.answers[1].leader = NodeId{1};
  r.answers[1].count = 1;
  EXPECT_FALSE(r.agreement_and_exact());
}

}  // namespace
}  // namespace hinet
