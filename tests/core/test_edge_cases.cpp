// Edge cases and cross-cutting determinism guarantees.
#include <gtest/gtest.h>

#include "analysis/scenarios.hpp"
#include "cluster/metrics.hpp"
#include "core/alg1.hpp"
#include "core/hinet_generator.hpp"
#include "sim/engine.hpp"

namespace hinet {
namespace {

TEST(GeneratorEdge, MinimalNodeBudgetHasNoMembers) {
  // nodes == heads + relays exactly: every node is backbone.
  HiNetConfig cfg;
  cfg.heads = 4;
  cfg.hop_l = 3;
  cfg.nodes = hinet_min_nodes(4, 3);  // 4 + 3*2 = 10
  cfg.phase_length = 5;
  cfg.phases = 3;
  cfg.seed = 1;
  HiNetTrace trace = make_hinet_trace(cfg);
  EXPECT_EQ(trace.ctvg.validate(), "");
  EXPECT_DOUBLE_EQ(trace.stats.mean_members, 0.0);
  EXPECT_EQ(trace.stats.reaffiliation_events, 0u);
}

TEST(GeneratorEdge, MembersOnlyNetworkWithSingleHead) {
  HiNetConfig cfg;
  cfg.heads = 1;
  cfg.hop_l = 1;
  cfg.nodes = 2;
  cfg.phase_length = 2;
  cfg.phases = 2;
  cfg.seed = 2;
  HiNetTrace trace = make_hinet_trace(cfg);
  EXPECT_EQ(trace.ctvg.validate(), "");
  // The single member hangs off the single head every round.
  for (Round r = 0; r < 4; ++r) {
    EXPECT_EQ(trace.ctvg.graph_at(r).edge_count() >= 1, true);
  }
}

TEST(GeneratorEdge, Alg1StillDeliversWithNoMembers) {
  // All-backbone network: Algorithm 1 degenerates to pure pipelining.
  const std::size_t heads = 4, k = 3, alpha = 1;
  const int l = 2;
  const std::size_t t = k + alpha * static_cast<std::size_t>(l);
  const std::size_t m = heads / alpha + 1;
  HiNetConfig cfg;
  cfg.heads = heads;
  cfg.hop_l = l;
  cfg.nodes = hinet_min_nodes(heads, l);
  cfg.phase_length = t;
  cfg.phases = m;
  cfg.seed = 3;
  HiNetTrace trace = make_hinet_trace(cfg);

  std::vector<TokenSet> init(cfg.nodes, TokenSet(k));
  for (TokenId tok = 0; tok < k; ++tok) {
    init[tok % cfg.nodes].insert(tok);
  }
  Alg1Params p;
  p.k = k;
  p.phase_length = t;
  p.phases = m;
  Engine engine(trace.ctvg.topology(), &trace.ctvg.hierarchy(),
                make_alg1_processes(init, p));
  const SimMetrics metrics =
      engine.run({.max_rounds = m * t, .stop_when_complete = false});
  EXPECT_TRUE(metrics.all_delivered);
}

TEST(Alg1Edge, RoleChurnAcrossPhasesStaysSafe) {
  // A node flips member -> gateway -> member across phases; state resets
  // must keep it functional (delivery still completes).
  const std::size_t n = 4, t = 4, phases = 3, k = 1;
  std::vector<Graph> graphs;
  std::vector<HierarchyView> views;
  for (std::size_t phase = 0; phase < phases; ++phase) {
    Graph g(n, {{0, 1}, {1, 2}, {0, 3}});
    HierarchyView h(n);
    h.set_head(0);
    h.set_head(2);
    h.set_member(3, 0);
    // Node 1 alternates between member-of-0 and gateway-of-2.
    if (phase % 2 == 0) {
      h.set_member(1, 0);
    } else {
      h.set_member(1, 2, /*gateway=*/true);
    }
    for (std::size_t r = 0; r < t; ++r) {
      graphs.push_back(g);
      views.push_back(h);
    }
  }
  Ctvg world(GraphSequence(std::move(graphs)),
             HierarchySequence(std::move(views)));
  std::vector<TokenSet> init(n, TokenSet(k));
  init[3].insert(0);  // far member token must reach node 2's side via 1
  Alg1Params p;
  p.k = k;
  p.phase_length = t;
  p.phases = phases;
  Engine engine(world.topology(), &world.hierarchy(),
                make_alg1_processes(init, p));
  const SimMetrics m =
      engine.run({.max_rounds = phases * t, .stop_when_complete = false});
  EXPECT_TRUE(m.all_delivered);
}

TEST(Determinism, ScenariosAreBitStablePerSeed) {
  ScenarioConfig cfg;
  cfg.nodes = 40;
  cfg.heads = 5;
  cfg.k = 4;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  for (Scenario s : {Scenario::kKloInterval, Scenario::kHiNetInterval,
                     Scenario::kHiNetIntervalStable, Scenario::kKloOne,
                     Scenario::kHiNetOne}) {
    const SimMetrics a = run_simulation(make_scenario(s, cfg, 77).spec);
    const SimMetrics b = run_simulation(make_scenario(s, cfg, 77).spec);
    EXPECT_EQ(a.tokens_sent, b.tokens_sent) << scenario_name(s);
    EXPECT_EQ(a.packets_sent, b.packets_sent) << scenario_name(s);
    EXPECT_EQ(a.rounds_to_completion, b.rounds_to_completion)
        << scenario_name(s);
    EXPECT_EQ(a.tokens_sent_per_round, b.tokens_sent_per_round)
        << scenario_name(s);
  }
}

TEST(Determinism, DifferentSeedsDifferentTraces) {
  ScenarioConfig cfg;
  cfg.nodes = 40;
  cfg.heads = 5;
  cfg.k = 4;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  const SimMetrics a =
      run_simulation(make_scenario(Scenario::kHiNetOne, cfg, 1).spec);
  const SimMetrics b =
      run_simulation(make_scenario(Scenario::kHiNetOne, cfg, 2).spec);
  // Not a hard guarantee, but with churn and random assignment an
  // identical outcome across seeds would indicate a plumbing bug.
  EXPECT_NE(a.tokens_sent, b.tokens_sent);
}

TEST(HierarchyMetricsOnTrace, MatchesGeneratorStats) {
  HiNetConfig cfg;
  cfg.nodes = 36;
  cfg.heads = 5;
  cfg.phase_length = 6;
  cfg.phases = 4;
  cfg.hop_l = 2;
  cfg.reaffiliation_prob = 0.2;
  cfg.seed = 5;
  HiNetTrace trace = make_hinet_trace(cfg);
  const HierarchyMetrics m =
      measure_hierarchy(trace.ctvg.hierarchy(), trace.ctvg.round_count());
  EXPECT_EQ(m.max_heads, cfg.heads);
  EXPECT_DOUBLE_EQ(m.mean_heads, static_cast<double>(cfg.heads));
  EXPECT_DOUBLE_EQ(m.mean_members, trace.stats.mean_members);
  // The head set is stable here (no churn configured).
  EXPECT_EQ(m.head_set_changes, 0u);
}

TEST(ScenarioEdge, TinyNetworkStillRuns) {
  ScenarioConfig cfg;
  cfg.nodes = 6;
  cfg.heads = 2;
  cfg.k = 2;
  cfg.alpha = 1;
  cfg.hop_l = 1;
  for (Scenario s : {Scenario::kHiNetInterval, Scenario::kHiNetOne}) {
    const SimMetrics m = run_simulation(make_scenario(s, cfg, 3).spec);
    EXPECT_TRUE(m.all_delivered) << scenario_name(s);
  }
}

}  // namespace
}  // namespace hinet
