// Mutation fuzzing of the trace parser: random single-character mutations
// of a valid serialization must either parse into a structurally valid
// trace or throw std::invalid_argument — never crash, hang, or produce an
// inconsistent Ctvg.
#include <gtest/gtest.h>

#include "core/hinet_generator.hpp"
#include "core/trace_io.hpp"
#include "util/rng.hpp"

namespace hinet {
namespace {

std::string base_text() {
  HiNetConfig cfg;
  cfg.nodes = 12;
  cfg.heads = 3;
  cfg.phase_length = 3;
  cfg.phases = 2;
  cfg.hop_l = 2;
  cfg.churn_edges = 2;
  cfg.seed = 99;
  HiNetTrace trace = make_hinet_trace(cfg);
  return serialize_ctvg(trace.ctvg);
}

class TraceIoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceIoFuzz, MutatedInputNeverBreaksInvariants) {
  static const std::string base = base_text();
  Rng rng(GetParam());
  const char charset[] = "0123456789 -hgmx\nroundeclstrv";

  for (int trial = 0; trial < 200; ++trial) {
    std::string text = base;
    const std::size_t mutations = 1 + rng.below(4);
    for (std::size_t i = 0; i < mutations; ++i) {
      const std::size_t pos = rng.below(text.size());
      switch (rng.below(3)) {
        case 0:  // replace
          text[pos] = charset[rng.below(sizeof(charset) - 1)];
          break;
        case 1:  // delete
          text.erase(pos, 1);
          break;
        default:  // insert
          text.insert(pos, 1, charset[rng.below(sizeof(charset) - 1)]);
          break;
      }
    }
    try {
      Ctvg parsed = parse_ctvg(text);
      // Parse accepted the mutation: the result must still be internally
      // consistent (the parser enforces head/cluster invariants; topology
      // adjacency is not part of the wire invariants, so validate() may
      // legitimately flag a moved edge — what must never happen is a
      // malformed object).
      EXPECT_EQ(parsed.node_count(), 12u);
      for (Round r = 0; r < parsed.round_count(); ++r) {
        const HierarchyView& h = parsed.hierarchy_at(r);
        for (NodeId v = 0; v < h.node_count(); ++v) {
          const ClusterId c = h.cluster_of(v);
          if (c != kNoCluster) {
            EXPECT_TRUE(h.is_head(c));
          }
        }
      }
    } catch (const std::invalid_argument&) {
      // Expected rejection path.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIoFuzz,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace hinet
