// Tests for the CTVG model and the Definition 2-8 checkers, including the
// Fig. 2 implication structure.
#include <gtest/gtest.h>

#include "core/ctvg.hpp"
#include "core/hinet_generator.hpp"
#include "core/hinet_properties.hpp"
#include "graph/generators.hpp"

namespace hinet {
namespace {

// A hand-built 4-node CTVG: head 0 with members 1, 2; head 3 bridged by
// gateway 2.  Graph: star around 0 plus edge 2-3.
Ctvg small_ctvg(std::size_t rounds, bool flip_member_at = false,
                std::size_t flip_round = 0) {
  std::vector<Graph> graphs;
  std::vector<HierarchyView> views;
  for (std::size_t r = 0; r < rounds; ++r) {
    Graph g(4, {{0, 1}, {0, 2}, {2, 3}});
    HierarchyView h(4);
    h.set_head(0);
    h.set_head(3);
    if (flip_member_at && r >= flip_round) {
      g.add_edge(1, 3);
      h.set_member(1, 3);
    } else {
      h.set_member(1, 0);
    }
    h.set_member(2, 0, /*gateway=*/true);
    graphs.push_back(std::move(g));
    views.push_back(std::move(h));
  }
  return Ctvg(GraphSequence(std::move(graphs)),
              HierarchySequence(std::move(views)));
}

TEST(Ctvg, ValidatesCleanTrace) {
  Ctvg g = small_ctvg(3);
  EXPECT_EQ(g.validate(), "");
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.round_count(), 3u);
}

TEST(Ctvg, ReportsRoundOfViolation) {
  std::vector<Graph> graphs{Graph(2, {{0, 1}}), Graph(2)};
  HierarchyView h(2);
  h.set_head(0);
  h.set_member(1, 0);
  Ctvg g(GraphSequence(std::move(graphs)), HierarchySequence({h, h}));
  const std::string err = g.validate();
  EXPECT_NE(err.find("round 1"), std::string::npos);
}

TEST(Ctvg, RejectsShapeMismatches) {
  EXPECT_THROW(Ctvg(GraphSequence({Graph(3)}),
                    HierarchySequence({HierarchyView(4)})),
               PreconditionError);
  EXPECT_THROW(
      Ctvg(GraphSequence({Graph(3), Graph(3)}),
           HierarchySequence({HierarchyView(3)})),
      PreconditionError);
}

TEST(Definition2, StableHeadSetHoldsOnConstantTrace) {
  Ctvg g = small_ctvg(6);
  EXPECT_TRUE(check_stable_head_set(g, 6, 3));
  EXPECT_TRUE(check_stable_head_set(g, 6, 2));
  EXPECT_TRUE(check_stable_head_set(g, 6, 6));
}

TEST(Definition2, DetectsHeadSetChangeInsidePhase) {
  // Head set changes at round 2: phase [0,4) is violated, phases of
  // length 2 are not.
  std::vector<Graph> graphs(4, Graph(2));
  std::vector<HierarchyView> views;
  for (std::size_t r = 0; r < 4; ++r) {
    HierarchyView h(2);
    h.set_head(r < 2 ? 0 : 1);
    views.push_back(h);
  }
  Ctvg g(GraphSequence(std::move(graphs)),
         HierarchySequence(std::move(views)));
  EXPECT_FALSE(check_stable_head_set(g, 4, 4));
  EXPECT_TRUE(check_stable_head_set(g, 4, 2));
  const auto res = check_stable_head_set(g, 4, 4);
  EXPECT_NE(res.violation.find("head set changed"), std::string::npos);
}

TEST(Definition3, ClusterStabilityPerCluster) {
  Ctvg g = small_ctvg(4, /*flip_member_at=*/true, /*flip_round=*/2);
  // Cluster 0 loses member 1 at round 2: stable for T=2, not T=4.
  EXPECT_TRUE(check_stable_cluster(g, 4, 2, 0));
  EXPECT_FALSE(check_stable_cluster(g, 4, 4, 0));
  // Cluster 3 gains member 1 at round 2.
  EXPECT_FALSE(check_stable_cluster(g, 4, 4, 3));
  // A never-populated cluster id is vacuously stable.
  EXPECT_TRUE(check_stable_cluster(g, 4, 4, 1));
}

TEST(Definition4, HierarchyStabilityIsHeadsPlusAllClusters) {
  Ctvg stable = small_ctvg(4);
  EXPECT_TRUE(check_stable_hierarchy(stable, 4, 4));
  Ctvg churn = small_ctvg(4, true, 2);
  EXPECT_FALSE(check_stable_hierarchy(churn, 4, 4));
  EXPECT_TRUE(check_stable_hierarchy(churn, 4, 2));
}

TEST(Definition5, StableHeadSubgraphExists) {
  Ctvg g = small_ctvg(3);
  const auto upsilon = stable_head_subgraph(g, 0, 3);
  ASSERT_TRUE(upsilon.has_value());
  // Υ must contain both heads and connect them.
  EXPECT_GE(upsilon->distance(0, 3), 1);
  EXPECT_TRUE(check_head_connectivity(g, 3, 3));
}

TEST(Definition5, FailsWhenHeadsShareNoStableComponent) {
  // Round 0 connects heads via 2-3; round 1 drops it.
  std::vector<Graph> graphs;
  graphs.push_back(Graph(4, {{0, 1}, {0, 2}, {2, 3}}));
  graphs.push_back(Graph(4, {{0, 1}, {0, 2}}));
  HierarchyView h(4);
  h.set_head(0);
  h.set_head(3);
  h.set_member(1, 0);
  h.set_member(2, 0, true);
  std::vector<HierarchyView> views{h, h};
  // Round 1's hierarchy is structurally fine (3 is its own cluster), but
  // the heads are disconnected in the window intersection.
  Ctvg g(GraphSequence(std::move(graphs)),
         HierarchySequence(std::move(views)));
  EXPECT_FALSE(stable_head_subgraph(g, 0, 2).has_value());
  EXPECT_FALSE(check_head_connectivity(g, 2, 2));
  // Even per-round (T=1) this fails: round 1 alone disconnects the heads.
  EXPECT_FALSE(check_head_connectivity(g, 2, 1));
  // Restricted to the good round only, the property holds.
  EXPECT_TRUE(check_head_connectivity(g, 1, 1));
}

TEST(Definition6, MeasuredOnBackboneOnly) {
  Ctvg g = small_ctvg(2);
  // Heads 0 and 3 joined via gateway 2: distance 2.
  EXPECT_EQ(measure_l_hop(g, 0), 2);
}

TEST(Definition7, BoundsLWithinUpsilon) {
  Ctvg g = small_ctvg(4);
  EXPECT_TRUE(check_t_interval_l_hop(g, 4, 2, 2));
  EXPECT_TRUE(check_t_interval_l_hop(g, 4, 2, 3));  // looser bound also holds
  EXPECT_FALSE(check_t_interval_l_hop(g, 4, 2, 1));  // too strict
  EXPECT_THROW(check_t_interval_l_hop(g, 4, 2, 0), PreconditionError);
}

TEST(Definition8, CombinesDefinition4And7) {
  Ctvg good = small_ctvg(4);
  EXPECT_TRUE(check_hinet(good, 4, 2, 2));
  Ctvg churn = small_ctvg(4, true, 1);
  EXPECT_FALSE(check_hinet(churn, 4, 2, 2));  // hierarchy unstable in phase 0
}

// ---- Fig. 2: implication structure between the definitions -------------

class ImplicationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImplicationSweep, Definition4ImpliesDefinitions2And3) {
  HiNetConfig cfg;
  cfg.nodes = 24;
  cfg.heads = 4;
  cfg.phase_length = 5;
  cfg.phases = 4;
  cfg.hop_l = 2;
  cfg.reaffiliation_prob = 0.3;
  cfg.churn_edges = 5;
  cfg.seed = GetParam();
  HiNetTrace trace = make_hinet_trace(cfg);
  Ctvg& g = trace.ctvg;
  const std::size_t rounds = g.round_count();
  ASSERT_TRUE(check_stable_hierarchy(g, rounds, cfg.phase_length));
  // Def. 4 => Def. 2.
  EXPECT_TRUE(check_stable_head_set(g, rounds, cfg.phase_length));
  // Def. 4 => Def. 3 for every cluster id.
  for (NodeId k = 0; k < g.node_count(); ++k) {
    EXPECT_TRUE(check_stable_cluster(g, rounds, cfg.phase_length, k));
  }
}

TEST_P(ImplicationSweep, Definition8ImpliesDefinitions4And7) {
  HiNetConfig cfg;
  cfg.nodes = 30;
  cfg.heads = 5;
  cfg.phase_length = 6;
  cfg.phases = 3;
  cfg.hop_l = 2;
  cfg.reaffiliation_prob = 0.2;
  cfg.churn_edges = 3;
  cfg.seed = GetParam();
  HiNetTrace trace = make_hinet_trace(cfg);
  Ctvg& g = trace.ctvg;
  const std::size_t rounds = g.round_count();
  ASSERT_TRUE(check_hinet(g, rounds, cfg.phase_length, cfg.hop_l));
  EXPECT_TRUE(check_stable_hierarchy(g, rounds, cfg.phase_length));
  EXPECT_TRUE(
      check_t_interval_l_hop(g, rounds, cfg.phase_length, cfg.hop_l));
  // Def. 7 => Def. 5.
  EXPECT_TRUE(check_head_connectivity(g, rounds, cfg.phase_length));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationSweep,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace hinet
