// Direct validation of Lemma 2 — the engine of Theorem 1's proof.
//
// "With T-interval L-hop cluster head connectivity and T-interval stable
//  hierarchy, for any token t known by node u at the beginning of any
//  phase i, at least ⌊(T-k)/L⌋ cluster head nodes will newly learn t in
//  the end of the phase i."
//
// We run Algorithm 1 on generated (T, L)-HiNet traces and, at every phase
// boundary, count for every token the heads that know it: the growth per
// phase must be at least min(⌊(T-k)/L⌋, heads that don't know it yet).
#include <gtest/gtest.h>

#include "analysis/assignment.hpp"
#include "core/alg1.hpp"
#include "core/hinet_generator.hpp"
#include "sim/engine.hpp"

namespace hinet {
namespace {

struct LemmaCase {
  std::size_t nodes, heads, k, alpha;
  int l;
  std::uint64_t seed;
};

class Lemma2Sweep : public ::testing::TestWithParam<LemmaCase> {};

TEST_P(Lemma2Sweep, EveryKnownTokenReachesAlphaNewHeadsPerPhase) {
  const LemmaCase c = GetParam();
  const std::size_t t = c.k + c.alpha * static_cast<std::size_t>(c.l);
  const std::size_t m = (c.heads + c.alpha - 1) / c.alpha + 1;

  HiNetConfig gen;
  gen.nodes = c.nodes;
  gen.heads = c.heads;
  gen.phase_length = t;
  gen.phases = m;
  gen.hop_l = c.l;
  gen.reaffiliation_prob = 0.1;
  gen.churn_edges = 3;
  gen.seed = c.seed;
  HiNetTrace trace = make_hinet_trace(gen);

  Rng rng(c.seed ^ 0x1e44aULL);
  const auto init =
      assign_tokens(c.nodes, c.k, AssignmentMode::kDistinctRandom, rng);

  Alg1Params params;
  params.k = c.k;
  params.phase_length = t;
  params.phases = m;
  auto procs = make_alg1_processes(init, params);
  std::vector<const Process*> views;
  for (const auto& p : procs) views.push_back(p.get());

  // Heads knowing each token at the previous phase boundary; tokens known
  // by anyone at the phase start.
  auto heads_knowing = [&](const HierarchyView& h) {
    std::vector<std::size_t> counts(c.k, 0);
    for (NodeId head : h.heads()) {
      for (TokenId tok = 0; tok < c.k; ++tok) {
        if (views[head]->knowledge().contains(tok)) ++counts[tok];
      }
    }
    return counts;
  };
  auto known_by_anyone = [&] {
    std::vector<char> known(c.k, 0);
    for (const Process* p : views) {
      for (TokenId tok = 0; tok < c.k; ++tok) {
        if (p->knowledge().contains(tok)) known[tok] = 1;
      }
    }
    return known;
  };

  Engine engine(trace.ctvg.topology(), &trace.ctvg.hierarchy(),
                std::move(procs));

  std::vector<std::size_t> at_phase_start(c.k, 0);
  std::vector<char> known_at_start(c.k, 0);
  bool initialised = false;
  std::size_t violations = 0;
  const std::size_t alpha_floor = (t - c.k) / static_cast<std::size_t>(c.l);

  engine.set_observer([&](Round r, std::span<const Packet>, const Graph&,
                          const HierarchyView& h) {
    const bool phase_end = (r + 1) % t == 0;
    if (!initialised) {
      // Baseline as of the start of phase 0 is the initial assignment,
      // approximated by the state after round 0's receive only for the
      // head counts; tokens are known from round 0 by their holders.
      at_phase_start.assign(c.k, 0);
      for (NodeId head : h.heads()) {
        for (TokenId tok = 0; tok < c.k; ++tok) {
          if (init[head].contains(tok)) ++at_phase_start[tok];
        }
      }
      for (TokenId tok = 0; tok < c.k; ++tok) known_at_start[tok] = 1;
      initialised = true;
    }
    if (!phase_end) return;
    const auto now = heads_knowing(h);
    for (TokenId tok = 0; tok < c.k; ++tok) {
      if (!known_at_start[tok]) continue;
      const std::size_t missing = c.heads - at_phase_start[tok];
      const std::size_t required = std::min(alpha_floor, missing);
      if (now[tok] < at_phase_start[tok] + required) ++violations;
    }
    at_phase_start = now;
    const auto known = known_by_anyone();
    for (TokenId tok = 0; tok < c.k; ++tok) known_at_start[tok] = known[tok];
  });

  const SimMetrics metrics =
      engine.run({.max_rounds = m * t, .stop_when_complete = false});
  EXPECT_TRUE(metrics.all_delivered);
  EXPECT_EQ(violations, 0u) << "Lemma 2 progress violated";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Lemma2Sweep,
    ::testing::Values(LemmaCase{30, 4, 4, 1, 2, 1},
                      LemmaCase{30, 4, 4, 1, 2, 2},
                      LemmaCase{40, 6, 6, 2, 2, 3},
                      LemmaCase{50, 8, 5, 2, 3, 4},
                      LemmaCase{60, 10, 8, 5, 2, 5},
                      LemmaCase{36, 6, 3, 3, 1, 6}));

}  // namespace
}  // namespace hinet
