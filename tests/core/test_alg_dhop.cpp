// Multi-hop cluster dissemination (DhopProcess).
#include "core/alg_dhop.hpp"

#include <gtest/gtest.h>

#include "analysis/assignment.hpp"
#include "baseline/klo.hpp"
#include "cluster/dhop.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace hinet {
namespace {

/// Static d-hop world: graph + clustering + routing for `rounds` rounds.
struct DhopWorld {
  StaticNetwork net;
  HierarchySequence hier;
  RoutingSequence routing;

  DhopWorld(Graph g, HierarchyView h, std::size_t rounds)
      : net(std::move(g)),
        hier({std::move(h)}),
        routing(build_routing_over(net, hier, rounds)) {}
};

DhopWorld chain_world(std::size_t rounds) {
  // head 0 - 1 - 2 - 3 (3-hop cluster), plus head 4 adjacent to 3.
  Graph g(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  HierarchyView h(5);
  h.set_head(0);
  h.set_member(1, 0);
  h.set_member(2, 0);
  h.set_member(3, 0);
  h.set_head(4);
  return DhopWorld(std::move(g), std::move(h), rounds);
}

TEST(DhopDissemination, DeliversAcrossMultiHopCluster) {
  DhopWorld w = chain_world(20);
  std::vector<TokenSet> init(5, TokenSet(2));
  init[3].insert(0);  // deep member holds a token
  init[0].insert(1);  // head holds another
  DhopParams p;
  p.k = 2;
  p.rounds = 20;
  Engine engine(w.net, &w.hier, make_dhop_processes(init, p, w.routing));
  const SimMetrics m =
      engine.run({.max_rounds = 20, .stop_when_complete = true});
  EXPECT_TRUE(m.all_delivered);
}

TEST(DhopDissemination, LeavesSendDeltasOnly) {
  DhopWorld w = chain_world(10);
  std::vector<TokenSet> init(5, TokenSet(3));
  init[3] = TokenSet(3, {0, 1, 2});  // node 3: leaf? 3 has child? chain
  // Node 3's children: node 4 is a head, so 3's children = {} unless 4
  // routes through it; 4 is a head (no parent).  Node 3 is a leaf of
  // cluster 0's tree.
  DhopParams p;
  p.k = 3;
  p.rounds = 10;
  Engine engine(w.net, &w.hier, make_dhop_processes(init, p, w.routing));
  TraceRecorder rec;
  engine.set_observer(rec.observer());
  engine.run({.max_rounds = 10, .stop_when_complete = false});
  // Node 3's first transmission: the full delta {0,1,2} addressed to its
  // parent 2; afterwards node 3 stays silent (nothing new to upload).
  std::size_t sends_by_3 = 0;
  for (const auto& rr : rec.rounds()) {
    for (const Packet& pkt : rr.packets) {
      if (pkt.src == 3) {
        ++sends_by_3;
        EXPECT_EQ(pkt.dest, 2u);
        EXPECT_EQ(pkt.tokens, TokenSet(3, {0, 1, 2}));
      }
    }
  }
  EXPECT_EQ(sends_by_3, 1u);
}

TEST(DhopDissemination, InternalNodesBroadcastOnChangeOnly) {
  DhopWorld w = chain_world(12);
  std::vector<TokenSet> init(5, TokenSet(1));
  init[0].insert(0);
  DhopParams p;
  p.k = 1;
  p.rounds = 12;
  Engine engine(w.net, &w.hier, make_dhop_processes(init, p, w.routing));
  TraceRecorder rec;
  engine.set_observer(rec.observer());
  const SimMetrics m =
      engine.run({.max_rounds = 12, .stop_when_complete = false});
  EXPECT_TRUE(m.all_delivered);
  // Head 0 broadcasts once (its TA never changes after that); relays 1 and
  // 2 broadcast once each as the token reaches them; leaf 3 uploads once
  // (to parent 2, heard also by head 4); head 4 broadcasts once.  Exactly
  // 5 packets.
  EXPECT_EQ(m.packets_sent, 5u);
}

TEST(DhopDissemination, PeriodicRebroadcastHealsLoss) {
  // The inter-head edge 0-2 appears only at round 6, after change-
  // triggered broadcasts have quiesced; only the periodic variant still
  // announces TA across the new edge.
  const std::size_t n = 4, rounds = 20;
  std::vector<Graph> graphs;
  std::vector<HierarchyView> views;
  for (Round r = 0; r < rounds; ++r) {
    Graph g(n, {{0, 1}, {2, 3}});
    if (r >= 6) g.add_edge(0, 2);
    HierarchyView h(n);
    h.set_head(0);
    h.set_member(1, 0);
    h.set_head(2);
    h.set_member(3, 2);
    graphs.push_back(std::move(g));
    views.push_back(std::move(h));
  }
  GraphSequence net1(graphs);
  HierarchySequence hier1(views);
  RoutingSequence routing1 = build_routing_over(net1, hier1, rounds);

  std::vector<TokenSet> init(n, TokenSet(1));
  init[0].insert(0);

  DhopParams change_only;
  change_only.k = 1;
  change_only.rounds = rounds;
  Engine e1(net1, &hier1, make_dhop_processes(init, change_only, routing1));
  const SimMetrics m1 =
      e1.run({.max_rounds = rounds, .stop_when_complete = false});
  EXPECT_FALSE(m1.all_delivered);

  GraphSequence net2(graphs);
  HierarchySequence hier2(views);
  RoutingSequence routing2 = build_routing_over(net2, hier2, rounds);
  DhopParams periodic = change_only;
  periodic.rebroadcast_period = 4;
  Engine e2(net2, &hier2, make_dhop_processes(init, periodic, routing2));
  const SimMetrics m2 =
      e2.run({.max_rounds = rounds, .stop_when_complete = false});
  EXPECT_TRUE(m2.all_delivered);
}

TEST(DhopDissemination, CheaperThanFlatFloodOnDeepClusters) {
  Rng rng(5);
  const Graph g = gen::random_connected(48, 40, rng);
  const HierarchyView h = greedy_dhop_clustering(g, 3);
  const std::size_t rounds = 60, k = 5;

  StaticNetwork net1(g);
  HierarchySequence hier1({h});
  RoutingSequence routing = build_routing_over(net1, hier1, rounds);
  Rng arng(9);
  const auto init = assign_tokens(48, k, AssignmentMode::kDistinctRandom, arng);

  DhopParams p;
  p.k = k;
  p.rounds = rounds;
  Engine e1(net1, &hier1, make_dhop_processes(init, p, routing));
  const SimMetrics m_dhop =
      e1.run({.max_rounds = rounds, .stop_when_complete = false});

  StaticNetwork net2(g);
  KloFloodParams kf;
  kf.k = k;
  kf.rounds = rounds;
  Engine e2(net2, nullptr, make_klo_flood_processes(init, kf));
  const SimMetrics m_klo =
      e2.run({.max_rounds = rounds, .stop_when_complete = false});

  ASSERT_TRUE(m_dhop.all_delivered);
  ASSERT_TRUE(m_klo.all_delivered);
  EXPECT_LT(m_dhop.tokens_sent, m_klo.tokens_sent);
}

TEST(DhopDissemination, RejectsBadParams) {
  DhopWorld w = chain_world(2);
  DhopParams p;
  p.k = 3;
  p.rounds = 0;
  EXPECT_THROW(DhopProcess(0, TokenSet(3), p, w.routing), PreconditionError);
  p.rounds = 2;
  EXPECT_THROW(DhopProcess(0, TokenSet(2), p, w.routing), PreconditionError);
}

}  // namespace
}  // namespace hinet
