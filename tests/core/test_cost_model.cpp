#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace hinet {
namespace {

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 1), 1u);
  EXPECT_THROW(ceil_div(1, 0), PreconditionError);
}

CostParams paper_params_interval() { return table3_params_hinet_interval(); }

// ------- Table 3 reproduction (the paper's one numeric experiment) -------

TEST(Table3, KloIntervalRow) {
  const CostParams p = paper_params_interval();
  // ⌈100/10⌉ · (8+10) = 180 rounds.
  EXPECT_EQ(time_klo_interval(p), 180u);
  // ⌈100/10⌉ · 100 · 8 = 8000 tokens.
  EXPECT_EQ(comm_klo_interval(p), 8000u);
}

TEST(Table3, HiNetIntervalRow) {
  const CostParams p = paper_params_interval();
  // (⌈30/5⌉+1) · 18 = 126 rounds.
  EXPECT_EQ(time_hinet_interval(p), 126u);
  // 7 · 60 · 8 + 40 · 3 · 8 = 3360 + 960 = 4320 tokens.
  EXPECT_EQ(comm_hinet_interval(p), 4320u);
}

TEST(Table3, KloOneIntervalRow) {
  const CostParams p = table3_params_hinet_one();
  EXPECT_EQ(time_klo_one(p), 99u);
  EXPECT_EQ(comm_klo_one(p), 79200u);
}

TEST(Table3, HiNetOneIntervalRow) {
  const CostParams p = table3_params_hinet_one();
  EXPECT_EQ(time_hinet_one(p), 99u);
  // Formula value: 99·60·8 + 40·10·8 = 47520 + 3200 = 50720.  The paper
  // prints 51680 — a 960-token arithmetic slip recorded in EXPERIMENTS.md;
  // we reproduce the *formula*.
  EXPECT_EQ(comm_hinet_one(p), 50720u);
}

TEST(Table3, EvaluateAllRows) {
  const auto rows = evaluate_table3();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].time, 180u);
  EXPECT_EQ(rows[0].comm, 8000u);
  EXPECT_EQ(rows[1].time, 126u);
  EXPECT_EQ(rows[1].comm, 4320u);
  EXPECT_EQ(rows[2].time, 99u);
  EXPECT_EQ(rows[2].comm, 79200u);
  EXPECT_EQ(rows[3].time, 99u);
  EXPECT_EQ(rows[3].comm, 50720u);
}

TEST(Table3, HeadlineClaimsHold) {
  // The paper's Section V claims: HiNet costs much less communication at
  // similar-or-better time; benefit "as much as 50%".
  const auto rows = evaluate_table3();
  EXPECT_LT(rows[1].comm, rows[0].comm);      // 4320 < 8000
  EXPECT_LT(rows[1].time, rows[0].time);      // 126 < 180
  EXPECT_LT(rows[3].comm, rows[2].comm);      // 50720 < 79200
  EXPECT_EQ(rows[3].time, rows[2].time);      // same 99
  EXPECT_GE(1.0 - static_cast<double>(rows[1].comm) /
                      static_cast<double>(rows[0].comm),
            0.45);  // ≈46% saving in the (k+αL) setting
}

// ------- Table 2 structure -------

TEST(Table2, EvaluatesAllFourModels) {
  CostParams p;
  p.n0 = 50;
  p.theta = 10;
  p.n_m = 20;
  p.n_r = 2;
  p.k = 4;
  p.alpha = 2;
  p.l = 3;
  const auto rows = evaluate_table2(p);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].time, ceil_div(50, 6) * 10);
  EXPECT_EQ(rows[0].comm, ceil_div(50, 4) * 50 * 4);
  EXPECT_EQ(rows[1].time, (ceil_div(10, 2) + 1) * 10);
  EXPECT_EQ(rows[1].comm, 6u * 30u * 4u + 20u * 2u * 4u);
  EXPECT_EQ(rows[2].time, 49u);
  EXPECT_EQ(rows[2].comm, 49u * 50u * 4u);
  EXPECT_EQ(rows[3].time, 49u);
  EXPECT_EQ(rows[3].comm, 49u * 30u * 4u + 20u * 2u * 4u);
}

TEST(Table2, GuardsDegenerateInputs) {
  CostParams p;
  p.n0 = 0;
  p.k = 1;
  EXPECT_THROW(time_klo_one(p), PreconditionError);
  p.n0 = 10;
  p.n_m = 11;
  EXPECT_THROW(comm_hinet_interval(p), PreconditionError);
}

// ------- Schedule helpers -------

TEST(Schedules, Alg1Parameters) {
  const CostParams p = paper_params_interval();
  EXPECT_EQ(alg1_min_phase_length(p), 18u);  // k + αL = 8 + 10
  EXPECT_EQ(alg1_phase_count(p), 7u);        // ⌈30/5⌉ + 1
}

TEST(Schedules, Alg1StablePhaseCount) {
  EXPECT_EQ(alg1_stable_phase_count(30, 5), 7u);
  EXPECT_EQ(alg1_stable_phase_count(12, 5), 4u);  // ⌈12/5⌉+1
  EXPECT_EQ(alg1_stable_phase_count(0, 5), 1u);
}

TEST(Schedules, Alg2AndKlo) {
  const CostParams p = paper_params_interval();
  EXPECT_EQ(alg2_round_count(p), 99u);
  EXPECT_EQ(klo_phase_count(p), 10u);  // ⌈100/10⌉
}

// Property: the HiNet advantage claimed by the paper holds across a
// parameter grid whenever n_r is small relative to the dissemination
// length — the condition the paper states ("n_r should be much less than
// n_0").
struct GridCase {
  std::size_t n0, theta, n_m, n_r, k, alpha, l;
};

class CostModelGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(CostModelGrid, HiNetCommunicationWinsWhenChurnIsLow) {
  const GridCase c = GetParam();
  CostParams p;
  p.n0 = c.n0;
  p.theta = c.theta;
  p.n_m = c.n_m;
  p.n_r = c.n_r;
  p.k = c.k;
  p.alpha = c.alpha;
  p.l = c.l;
  EXPECT_LT(comm_hinet_interval(p), comm_klo_interval(p));
  EXPECT_LT(comm_hinet_one(p), comm_klo_one(p));
  EXPECT_LE(time_hinet_one(p), time_klo_one(p));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CostModelGrid,
    ::testing::Values(GridCase{100, 30, 40, 3, 8, 5, 2},
                      GridCase{50, 10, 25, 2, 4, 2, 2},
                      GridCase{200, 50, 100, 5, 16, 5, 3},
                      GridCase{400, 80, 200, 4, 32, 10, 2},
                      GridCase{60, 20, 30, 1, 2, 1, 1},
                      GridCase{1000, 100, 600, 8, 10, 4, 2}));

}  // namespace
}  // namespace hinet
