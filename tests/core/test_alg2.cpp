// Algorithm 2 conformance and Theorems 2-4 on generated (1, L)-HiNet
// traces.
#include "core/alg2.hpp"

#include <gtest/gtest.h>

#include "analysis/assignment.hpp"
#include "core/hinet_generator.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace hinet {
namespace {

Alg2Params params(std::size_t k, std::size_t rounds) {
  Alg2Params p;
  p.k = k;
  p.rounds = rounds;
  return p;
}

/// CTVG whose hierarchy re-affiliates member 2 from head 0 to head 3 at a
/// given round; topology is a 4-path with both member links present.
Ctvg reaffiliation_world(std::size_t rounds, std::size_t flip_round) {
  std::vector<Graph> graphs;
  std::vector<HierarchyView> views;
  for (std::size_t r = 0; r < rounds; ++r) {
    Graph g(4, {{0, 1}, {0, 2}, {2, 3}, {1, 3}});
    HierarchyView h(4);
    h.set_head(0);
    h.set_head(3);
    h.set_member(1, 0, true);
    h.set_member(2, r < flip_round ? 0 : 3, true);
    graphs.push_back(std::move(g));
    views.push_back(std::move(h));
  }
  return Ctvg(GraphSequence(std::move(graphs)),
              HierarchySequence(std::move(views)));
}

TEST(Alg2, HeadBroadcastsFullSetEveryRound) {
  Ctvg world = reaffiliation_world(3, 99);
  std::vector<TokenSet> init(4, TokenSet(2));
  init[0] = TokenSet(2, {0, 1});
  Engine engine(world.topology(), &world.hierarchy(),
                make_alg2_processes(init, params(2, 3)));
  TraceRecorder rec;
  engine.set_observer(rec.observer());
  engine.run({.max_rounds = 3, .stop_when_complete = false});
  for (Round r = 0; r < 3; ++r) {
    bool head0_sent_full = false;
    for (const Packet& p : rec.rounds()[r].packets) {
      if (p.src == 0 && p.dest == kBroadcastDest &&
          p.tokens == TokenSet(2, {0, 1})) {
        head0_sent_full = true;
      }
    }
    EXPECT_TRUE(head0_sent_full) << "round " << r;
  }
}

TEST(Alg2, MemberSendsOnceThenOnlyOnReaffiliation) {
  // Make node 2 a plain member (not gateway) so it is quiet between sends.
  std::vector<Graph> graphs;
  std::vector<HierarchyView> views;
  const std::size_t rounds = 6, flip = 3;
  for (std::size_t r = 0; r < rounds; ++r) {
    Graph g(4, {{0, 1}, {0, 2}, {2, 3}, {1, 3}});
    HierarchyView h(4);
    h.set_head(0);
    h.set_head(3);
    h.set_member(1, 0, true);
    h.set_member(2, r < flip ? 0 : 3);  // plain member, flips head
    graphs.push_back(std::move(g));
    views.push_back(std::move(h));
  }
  Ctvg world(GraphSequence(std::move(graphs)),
             HierarchySequence(std::move(views)));

  std::vector<TokenSet> init(4, TokenSet(3));
  init[2] = TokenSet(3, {1});
  auto procs = make_alg2_processes(init, params(3, rounds));
  auto* member = static_cast<Alg2Process*>(procs[2].get());
  Engine engine(world.topology(), &world.hierarchy(), std::move(procs));
  TraceRecorder rec;
  engine.set_observer(rec.observer());
  engine.run({.max_rounds = rounds, .stop_when_complete = false});

  std::vector<Round> send_rounds;
  for (const auto& rr : rec.rounds()) {
    for (const Packet& p : rr.packets) {
      if (p.src == 2) send_rounds.push_back(rr.round);
    }
  }
  // Exactly two uploads: round 0 (to head 0) and round `flip` (to head 3).
  ASSERT_EQ(send_rounds.size(), 2u);
  EXPECT_EQ(send_rounds[0], 0u);
  EXPECT_EQ(send_rounds[1], flip);
  EXPECT_EQ(member->member_uploads(), 2u);
}

TEST(Alg2, MemberUploadCarriesWholeTa) {
  // Star: head 0, plain members 1 and 2.
  std::vector<Graph> graphs(2, Graph(3, {{0, 1}, {0, 2}}));
  HierarchyView h(3);
  h.set_head(0);
  h.set_member(1, 0);
  h.set_member(2, 0);
  Ctvg world(GraphSequence(std::move(graphs)), HierarchySequence({h, h}));
  std::vector<TokenSet> init(3, TokenSet(3));
  init[2] = TokenSet(3, {0, 2});
  Engine engine(world.topology(), &world.hierarchy(),
                make_alg2_processes(init, params(3, 2)));
  TraceRecorder rec;
  engine.set_observer(rec.observer());
  engine.run({.max_rounds = 1, .stop_when_complete = false});
  const Packet* upload = nullptr;
  for (const Packet& p : rec.rounds()[0].packets) {
    if (p.src == 2) upload = &p;
  }
  ASSERT_NE(upload, nullptr);
  EXPECT_EQ(upload->tokens, TokenSet(3, {0, 2}));  // entire TA at once
  EXPECT_EQ(upload->dest, 0u);                     // addressed to the head
}

TEST(Alg2, EveryoneUnionsEverythingHeard) {
  // Fig. 5 members union from *neighbors*, not only their head.
  Ctvg world = reaffiliation_world(2, 99);
  std::vector<TokenSet> init(4, TokenSet(2));
  init[3] = TokenSet(2, {1});  // head 3 holds a token
  auto procs = make_alg2_processes(init, params(2, 2));
  auto* member1 = procs[1].get();
  Engine engine(world.topology(), &world.hierarchy(), std::move(procs));
  engine.run({.max_rounds = 1, .stop_when_complete = false});
  // Node 1 (member of head 0) is adjacent to head 3 and must have heard
  // head 3's broadcast even though 3 is not its cluster head.
  EXPECT_TRUE(member1->knowledge().contains(1));
}

TEST(Alg2, RejectsBadParameters) {
  EXPECT_THROW(Alg2Process(0, TokenSet(2), params(3, 4)), PreconditionError);
  EXPECT_THROW(Alg2Process(0, TokenSet(2), params(2, 0)), PreconditionError);
}

// ---------------- Theorem 2: n-1 rounds on (1, L)-HiNet traces -----------

struct Alg2Case {
  std::size_t nodes, heads, k;
  int l;
  double reaff;
  std::uint64_t seed;
};

class Theorem2Sweep : public ::testing::TestWithParam<Alg2Case> {};

TEST_P(Theorem2Sweep, DeliversWithinNMinusOneRounds) {
  const Alg2Case c = GetParam();
  HiNetConfig gen;
  gen.nodes = c.nodes;
  gen.heads = c.heads;
  gen.phase_length = 1;  // (1, L)-HiNet: hierarchy may change every round
  gen.phases = c.nodes - 1;
  gen.hop_l = c.l;
  gen.reaffiliation_prob = c.reaff;
  gen.churn_edges = 3;
  gen.seed = c.seed;
  HiNetTrace trace = make_hinet_trace(gen);

  Rng rng(c.seed ^ 0xfeedULL);
  const auto init =
      assign_tokens(c.nodes, c.k, AssignmentMode::kDistinctRandom, rng);
  Engine engine(trace.ctvg.topology(), &trace.ctvg.hierarchy(),
                make_alg2_processes(init, params(c.k, c.nodes - 1)));
  const SimMetrics m =
      engine.run({.max_rounds = c.nodes - 1, .stop_when_complete = false});
  EXPECT_TRUE(m.all_delivered)
      << "nodes=" << c.nodes << " heads=" << c.heads << " k=" << c.k
      << " L=" << c.l << " seed=" << c.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Theorem2Sweep,
    ::testing::Values(Alg2Case{20, 3, 4, 2, 0.2, 1},
                      Alg2Case{20, 3, 4, 2, 0.2, 2},
                      Alg2Case{30, 5, 8, 2, 0.3, 3},
                      Alg2Case{30, 5, 8, 2, 0.3, 4},
                      Alg2Case{40, 6, 5, 3, 0.1, 5},
                      Alg2Case{50, 8, 10, 2, 0.4, 6},
                      Alg2Case{25, 4, 3, 1, 0.5, 7},
                      Alg2Case{60, 10, 12, 2, 0.2, 8}));

// Theorem 4: with an L-interval stable hierarchy, Algorithm 2 terminates
// within θ·L + 1 rounds (at least one new head learns each token per L
// rounds).  Generated traces with phase_length = L provide exactly that
// stability.
struct Theorem4Case {
  std::size_t nodes, heads, k;
  int l;
  std::uint64_t seed;
};

class Theorem4Sweep : public ::testing::TestWithParam<Theorem4Case> {};

TEST_P(Theorem4Sweep, DeliversWithinThetaLPlusOneRounds) {
  const Theorem4Case c = GetParam();
  const std::size_t bound =
      c.heads * static_cast<std::size_t>(c.l) + 1;  // θ·L + 1
  HiNetConfig gen;
  gen.nodes = c.nodes;
  gen.heads = c.heads;
  gen.phase_length = static_cast<std::size_t>(c.l);  // L-interval stability
  gen.phases = (bound + gen.phase_length - 1) / gen.phase_length;
  gen.hop_l = c.l;
  gen.reaffiliation_prob = 0.3;
  gen.churn_edges = 2;
  gen.seed = c.seed;
  HiNetTrace trace = make_hinet_trace(gen);

  Rng rng(c.seed ^ 0x44444ULL);
  const auto init =
      assign_tokens(c.nodes, c.k, AssignmentMode::kDistinctRandom, rng);
  Engine engine(trace.ctvg.topology(), &trace.ctvg.hierarchy(),
                make_alg2_processes(init, params(c.k, bound)));
  const SimMetrics m =
      engine.run({.max_rounds = bound, .stop_when_complete = false});
  EXPECT_TRUE(m.all_delivered)
      << "nodes=" << c.nodes << " heads=" << c.heads << " L=" << c.l
      << " seed=" << c.seed;
  EXPECT_LE(m.rounds_to_completion, bound);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Theorem4Sweep,
    ::testing::Values(Theorem4Case{24, 4, 4, 2, 1},
                      Theorem4Case{24, 4, 4, 2, 2},
                      Theorem4Case{36, 6, 6, 2, 3},
                      Theorem4Case{36, 6, 6, 3, 4},
                      Theorem4Case{48, 8, 5, 2, 5},
                      Theorem4Case{30, 5, 8, 3, 6}));

// Theorem 3: with (αL)-interval head connectivity the same algorithm
// terminates in ⌈θ/α⌉ + 1 rounds... of phases of length αL.  We test the
// operative claim on stable traces: completion is much faster than n-1
// when the backbone persists.
TEST(Theorem3, StableBackboneCompletesFasterThanNMinusOne) {
  HiNetConfig gen;
  gen.nodes = 60;
  gen.heads = 6;
  gen.phase_length = 60;  // backbone static for the whole run
  gen.phases = 1;
  gen.hop_l = 2;
  gen.reaffiliation_prob = 0.0;
  gen.churn_edges = 0;
  gen.seed = 11;
  HiNetTrace trace = make_hinet_trace(gen);

  Rng rng(99);
  const auto init =
      assign_tokens(60, 6, AssignmentMode::kDistinctRandom, rng);
  Engine engine(trace.ctvg.topology(), &trace.ctvg.hierarchy(),
                make_alg2_processes(init, params(6, 59)));
  const SimMetrics m =
      engine.run({.max_rounds = 59, .stop_when_complete = true});
  ASSERT_TRUE(m.all_delivered);
  // Diameter of the backbone chain is ~(heads-1)*L + member hops; far less
  // than n-1 = 59.
  EXPECT_LT(m.rounds_to_completion, 20u);
}

}  // namespace
}  // namespace hinet
