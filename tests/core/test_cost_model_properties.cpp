// Monotonicity and scaling properties of the Table 2 closed forms —
// the qualitative structure the sweeps rely on, checked symbolically
// across a random parameter grid.
#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "util/rng.hpp"

namespace hinet {
namespace {

CostParams random_params(Rng& rng) {
  CostParams p;
  p.n0 = 20 + rng.below(400);
  p.theta = 2 + rng.below(p.n0 / 2);
  p.n_m = rng.below(p.n0);
  p.n_r = rng.below(12);
  p.k = 1 + rng.below(32);
  p.alpha = 1 + rng.below(8);
  p.l = 1 + rng.below(4);
  return p;
}

class CostModelProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CostModelProperties, CommunicationLinearInK) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    CostParams p = random_params(rng);
    CostParams p2 = p;
    p2.k = 2 * p.k;
    // Every communication formula is proportional to k at fixed other
    // parameters, except for the ceil terms which do not involve k in the
    // comm columns of rows 1, 3, 4; row 2's phase count is k-free too.
    EXPECT_EQ(comm_klo_one(p2), 2 * comm_klo_one(p));
    EXPECT_EQ(comm_hinet_one(p2), 2 * comm_hinet_one(p));
    EXPECT_EQ(comm_klo_interval(p2), 2 * comm_klo_interval(p));
    EXPECT_EQ(comm_hinet_interval(p2), 2 * comm_hinet_interval(p));
  }
}

TEST_P(CostModelProperties, MemberTermMonotoneInChurn) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    CostParams p = random_params(rng);
    CostParams p2 = p;
    p2.n_r = p.n_r + 3;
    EXPECT_GE(comm_hinet_interval(p2), comm_hinet_interval(p));
    EXPECT_GE(comm_hinet_one(p2), comm_hinet_one(p));
    // KLO costs are churn-independent.
    EXPECT_EQ(comm_klo_interval(p2), comm_klo_interval(p));
    EXPECT_EQ(comm_klo_one(p2), comm_klo_one(p));
  }
}

TEST_P(CostModelProperties, BackboneTermShrinksWithMoreMembers) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    CostParams p = random_params(rng);
    if (p.n_m + 5 > p.n0 || p.n_r > 0) continue;
    CostParams p2 = p;
    p2.n_m = p.n_m + 5;
    // With n_r = 0, moving nodes from backbone to member strictly reduces
    // both HiNet communication costs.
    EXPECT_LT(comm_hinet_interval(p2), comm_hinet_interval(p));
    EXPECT_LT(comm_hinet_one(p2), comm_hinet_one(p));
  }
}

TEST_P(CostModelProperties, TimeMonotoneInThetaAndImprovedByAlpha) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    CostParams p = random_params(rng);
    CostParams more_heads = p;
    more_heads.theta = p.theta + p.alpha;  // one more full phase
    EXPECT_GT(time_hinet_interval(more_heads), time_hinet_interval(p));

    // Larger alpha never increases the phase count, though each phase
    // lengthens; the phase count itself is monotone non-increasing.
    CostParams bigger_alpha = p;
    bigger_alpha.alpha = p.alpha + 1;
    EXPECT_LE(alg1_phase_count(bigger_alpha), alg1_phase_count(p));
    EXPECT_GT(alg1_min_phase_length(bigger_alpha),
              alg1_min_phase_length(p));
  }
}

TEST_P(CostModelProperties, HiNetOneAlwaysAtMostKloOne) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const CostParams p = random_params(rng);
    // (n0-1)(n0-n_m)k + n_m*n_r*k <= (n0-1)*n0*k  iff  n_r <= n0-1,
    // which random_params guarantees (n_r < 12 <= n0-1 for n0 >= 20).
    ASSERT_LE(p.n_r, p.n0 - 1);
    EXPECT_LE(comm_hinet_one(p), comm_klo_one(p));
    EXPECT_EQ(time_hinet_one(p), time_klo_one(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostModelProperties,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace hinet
