// Differential tests: the hierarchical algorithms degenerate to the flat
// KLO baselines when every node is a cluster head.
//
//   - Algorithm 1's head/gateway rule (broadcast min(TA\TS), clear TS per
//     phase) run by ALL nodes is exactly the KLO pipeline — the paper
//     derives its comparison row this way.
//   - Algorithm 2's head rule (broadcast TA every round) run by all nodes
//     is exactly KLO token forwarding.
// Running both implementations on identical traces and comparing
// per-round metrics pins the shared semantics down to the packet level.
#include <gtest/gtest.h>

#include "analysis/assignment.hpp"
#include "baseline/klo.hpp"
#include "core/alg1.hpp"
#include "core/alg2.hpp"
#include "graph/adversary.hpp"
#include "sim/engine.hpp"

namespace hinet {
namespace {

/// Hierarchy where every node heads its own singleton cluster.
HierarchySequence all_heads(std::size_t n) {
  HierarchyView h(n);
  for (NodeId v = 0; v < n; ++v) h.set_head(v);
  return HierarchySequence({h});
}

struct DiffCase {
  std::size_t nodes, k, t;
  std::uint64_t seed;
};

class Alg1VsKloPipeline : public ::testing::TestWithParam<DiffCase> {};

TEST_P(Alg1VsKloPipeline, IdenticalMetricsOnAllHeadHierarchy) {
  const DiffCase c = GetParam();
  const std::size_t phases = 4;
  AdversaryConfig adv;
  adv.nodes = c.nodes;
  adv.interval = c.t;
  adv.rounds = phases * c.t;
  adv.churn_edges = 3;
  adv.seed = c.seed;
  GraphSequence net1 = make_t_interval_trace(adv);
  GraphSequence net2 = make_t_interval_trace(adv);
  HierarchySequence hier = all_heads(c.nodes);

  Rng rng(c.seed ^ 0xd1ffULL);
  const auto init =
      assign_tokens(c.nodes, c.k, AssignmentMode::kDistinctRandom, rng);

  Alg1Params a1;
  a1.k = c.k;
  a1.phase_length = c.t;
  a1.phases = phases;
  Engine e1(net1, &hier, make_alg1_processes(init, a1));
  const SimMetrics m1 =
      e1.run({.max_rounds = phases * c.t, .stop_when_complete = false});

  KloPipelineParams kp;
  kp.k = c.k;
  kp.phase_length = c.t;
  kp.phases = phases;
  Engine e2(net2, nullptr, make_klo_pipeline_processes(init, kp));
  const SimMetrics m2 =
      e2.run({.max_rounds = phases * c.t, .stop_when_complete = false});

  EXPECT_EQ(m1.packets_sent, m2.packets_sent);
  EXPECT_EQ(m1.tokens_sent, m2.tokens_sent);
  EXPECT_EQ(m1.rounds_to_completion, m2.rounds_to_completion);
  EXPECT_EQ(m1.tokens_sent_per_round, m2.tokens_sent_per_round);
  EXPECT_EQ(m1.complete_nodes_per_round, m2.complete_nodes_per_round);
  // Final knowledge is token-for-token identical.
  for (NodeId v = 0; v < c.nodes; ++v) {
    EXPECT_TRUE(e1.process(v).knowledge() == e2.process(v).knowledge())
        << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Alg1VsKloPipeline,
    ::testing::Values(DiffCase{12, 3, 5, 1}, DiffCase{20, 6, 8, 2},
                      DiffCase{16, 4, 6, 3}, DiffCase{24, 8, 10, 4},
                      DiffCase{30, 5, 7, 5}));

class Alg2VsKloFlood : public ::testing::TestWithParam<DiffCase> {};

TEST_P(Alg2VsKloFlood, IdenticalMetricsOnAllHeadHierarchy) {
  const DiffCase c = GetParam();
  const std::size_t rounds = c.nodes - 1;
  AdversaryConfig adv;
  adv.nodes = c.nodes;
  adv.interval = 1;
  adv.rounds = rounds;
  adv.churn_edges = 2;
  adv.seed = c.seed;
  GraphSequence net1 = make_t_interval_trace(adv);
  GraphSequence net2 = make_t_interval_trace(adv);
  HierarchySequence hier = all_heads(c.nodes);

  Rng rng(c.seed ^ 0xd2ffULL);
  const auto init =
      assign_tokens(c.nodes, c.k, AssignmentMode::kDistinctRandom, rng);

  Alg2Params a2;
  a2.k = c.k;
  a2.rounds = rounds;
  Engine e1(net1, &hier, make_alg2_processes(init, a2));
  const SimMetrics m1 =
      e1.run({.max_rounds = rounds, .stop_when_complete = false});

  KloFloodParams kf;
  kf.k = c.k;
  kf.rounds = rounds;
  Engine e2(net2, nullptr, make_klo_flood_processes(init, kf));
  const SimMetrics m2 =
      e2.run({.max_rounds = rounds, .stop_when_complete = false});

  EXPECT_EQ(m1.packets_sent, m2.packets_sent);
  EXPECT_EQ(m1.tokens_sent, m2.tokens_sent);
  EXPECT_EQ(m1.tokens_sent_per_round, m2.tokens_sent_per_round);
  EXPECT_EQ(m1.rounds_to_completion, m2.rounds_to_completion);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Alg2VsKloFlood,
    ::testing::Values(DiffCase{12, 3, 0, 1}, DiffCase{20, 6, 0, 2},
                      DiffCase{16, 4, 0, 3}, DiffCase{28, 8, 0, 4}));

// Engine-level invariants that every algorithm must preserve, checked on
// one representative of each family.
TEST(EngineInvariants, KnowledgeOnlyGrowsAndStaysWithinInitialUnion) {
  AdversaryConfig adv;
  adv.nodes = 15;
  adv.interval = 1;
  adv.rounds = 14;
  adv.churn_edges = 2;
  adv.seed = 9;
  GraphSequence net = make_t_interval_trace(adv);
  Rng rng(3);
  const auto init = assign_tokens(15, 4, AssignmentMode::kDistinctRandom, rng);
  TokenSet all(4);
  for (const auto& s : init) all.unite(s);
  ASSERT_TRUE(all.full());

  KloFloodParams p;
  p.k = 4;
  p.rounds = 14;
  auto procs = make_klo_flood_processes(init, p);
  std::vector<const Process*> views;
  for (const auto& pr : procs) views.push_back(pr.get());
  Engine engine(net, nullptr, std::move(procs));
  std::vector<std::size_t> prev_counts(15, 0);
  engine.set_observer([&](Round, std::span<const Packet>, const Graph&,
                          const HierarchyView&) {
    for (std::size_t v = 0; v < views.size(); ++v) {
      const TokenSet& ta = views[v]->knowledge();
      EXPECT_GE(ta.count(), prev_counts[v]);  // monotone
      EXPECT_TRUE(ta.subset_of(all));         // no fabricated tokens
      prev_counts[v] = ta.count();
    }
  });
  engine.run({.max_rounds = 14, .stop_when_complete = false});
}

}  // namespace
}  // namespace hinet
